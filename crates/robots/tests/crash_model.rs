//! Property-based tests of the crash-fault model: crashed robots never
//! move under any schedule, the crash checker's refutations replay to
//! their recorded outcomes, and the frozen-mask engine step agrees
//! with plain masking.

use proptest::prelude::*;
use robots::faults::{self, CrashChecker, CrashOptions, CrashVerdict};
use robots::sched::{CrashRound, CrashSchedule};
use robots::{engine, Algorithm, Configuration, Limits, View};
use trigrid::{Coord, Dir};

/// Strategy: a connected configuration of `n` robots grown from the
/// origin (deterministic given the choice list).
fn connected_config(n: usize) -> impl Strategy<Value = Configuration> {
    proptest::collection::vec((0usize..64, 0usize..6), n - 1).prop_map(move |choices| {
        let mut cells = vec![trigrid::ORIGIN];
        for (anchor_raw, dir_raw) in choices {
            for probe in 0..cells.len() {
                let anchor = cells[(anchor_raw + probe) % cells.len()];
                let mut done = false;
                for k in 0..6 {
                    let cand = anchor.step(Dir::from_index(dir_raw + k));
                    if !cells.contains(&cand) {
                        cells.push(cand);
                        done = true;
                        break;
                    }
                }
                if done {
                    break;
                }
            }
        }
        Configuration::new(cells)
    })
}

/// Strategy: a random total visibility-1 algorithm as a 64-entry table.
fn random_rule_table() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..7, 64)
}

struct VecTable(Vec<u8>);

impl Algorithm for VecTable {
    fn radius(&self) -> u32 {
        1
    }
    fn compute(&self, view: &View) -> Option<Dir> {
        let code = self.0[view.bits() as usize];
        (code != 0).then(|| Dir::from_index((code - 1) as usize))
    }
}

/// Strategy: an arbitrary crash-fault schedule of 16 rounds (the
/// vendored proptest shim generates fixed-length vectors).
fn crash_schedule() -> impl Strategy<Value = CrashSchedule> {
    proptest::collection::vec((0u16..256, 0u16..256), 16).prop_map(|rounds| {
        CrashSchedule::new(
            rounds.into_iter().map(|(crash, activate)| CrashRound { crash, activate }).collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The heart of the fault model: once a robot crashes, its node
    /// stays occupied in every later configuration of the execution,
    /// under ANY schedule and ANY algorithm.
    #[test]
    fn crashed_robots_never_move(
        cfg in connected_config(7),
        table in random_rule_table(),
        schedule in crash_schedule(),
    ) {
        let algo = VecTable(table);
        let limits = Limits { max_rounds: 40, detect_livelock: false };
        let run = faults::run_crash_schedule(&cfg, &algo, &schedule, limits);
        let trace = run.execution.trace.as_ref().expect("crash runs record traces");
        prop_assert!(run.events.len() == run.crashed.len());
        for &(at, coord) in &run.events {
            prop_assert!(at < trace.len());
            prop_assert!(
                trace[at..].iter().all(|c| c.contains(coord)),
                "crashed robot at {coord:?} (trace index {at}) moved"
            );
        }
        // The total number of crashes never exceeds what the schedule
        // asked for.
        prop_assert!((run.crashed.len() as u32) <= schedule.crash_count());
    }

    /// Every crash-refuted verdict on random 5-robot classes replays
    /// through the engine to exactly its recorded outcome. The checker
    /// records outcomes in the canonical frame, so it is checked on the
    /// canonical class representative (as the sweep pipeline does).
    #[test]
    fn crash_refutations_replay(
        raw in connected_config(5),
        table in random_rule_table(),
    ) {
        let cfg = raw.canonical();
        let algo = VecTable(table);
        let checker = CrashChecker::new(&algo, CrashOptions::default());
        let report = checker.check(&cfg);
        if let CrashVerdict::Refuted { outcome, schedule } = &report.verdict {
            let crashes: u32 = schedule.iter().map(|a| a.crash.count_ones()).sum();
            prop_assert!(crashes <= u32::from(checker.crashes()));
            let run = faults::replay(&cfg, &algo, &report.verdict).expect("refutations replay");
            prop_assert_eq!(&run.execution.outcome, outcome);
            prop_assert!(!run.execution.outcome.is_gathered());
        }
    }

    /// `engine::step_frozen` is exactly `step_masked` with the frozen
    /// robots de-activated.
    #[test]
    fn step_frozen_matches_masked_step(
        cfg in connected_config(6),
        table in random_rule_table(),
        bits in 0u32..65_536,
    ) {
        let algo = VecTable(table);
        let n = cfg.len();
        let active: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
        let frozen: Vec<bool> = (0..n).map(|i| bits & (1 << (i + 8)) != 0).collect();
        let thawed: Vec<bool> =
            active.iter().zip(&frozen).map(|(&a, &f)| a && !f).collect();
        let via_frozen = engine::step_frozen(&cfg, &algo, &active, &frozen);
        let via_masked = engine::step_masked(&cfg, &algo, &thawed);
        prop_assert_eq!(via_frozen, via_masked);
    }

    /// The checker's verdict is reproducible and its refutation
    /// schedules respect the crash budget even at larger budgets.
    #[test]
    fn crash_checker_is_deterministic(
        cfg in connected_config(4),
        table in random_rule_table(),
    ) {
        let algo = VecTable(table);
        let checker = CrashChecker::new(&algo, CrashOptions::new(2, 8));
        let a = checker.check(&cfg);
        let b = checker.check(&cfg);
        prop_assert_eq!(a, b);
    }
}

/// Deterministic LCG, so the deep-collision hunt below needs no rand
/// dependency and never shrinks away from its witnesses.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn lcg_connected(n: usize, rng: &mut Lcg) -> Configuration {
    let mut cells = vec![trigrid::ORIGIN];
    while cells.len() < n {
        let anchor = cells[(rng.next() as usize) % cells.len()];
        let cand = anchor.step(Dir::from_index(rng.next() as usize % 6));
        if !cells.contains(&cand) {
            cells.push(cand);
        }
    }
    Configuration::new(cells)
}

/// Collision refutations carry concrete coordinates, making them the
/// replay path's most frame-sensitive case: the recorded collision
/// must be reproduced node-for-node by re-running the schedule through
/// the engine. Hunt them over a large deterministic sample of random
/// rule tables and check replay outcome equality on every one. (BFS
/// minimality makes these collisions shallow — the checker refutes at
/// the first bad terminal — so the sample asserts breadth, not depth;
/// the `crash_refutations_replay` proptest above covers the shrunken
/// corner cases.)
#[test]
fn collision_refutations_replay_node_for_node() {
    let mut rng = Lcg(0xDEAD_BEEF);
    let mut collisions = 0usize;
    for _ in 0..400 {
        let table: Vec<u8> = (0..64).map(|_| (rng.next() % 7) as u8).collect();
        let algo = VecTable(table);
        let cfg = lcg_connected(5, &mut rng).canonical();
        let checker = CrashChecker::new(&algo, CrashOptions::default());
        let report = checker.check(&cfg);
        if let CrashVerdict::Refuted { outcome, .. } = &report.verdict {
            if matches!(outcome, robots::Outcome::Collision { .. }) {
                collisions += 1;
                let run = faults::replay(&cfg, &algo, &report.verdict).expect("refutations replay");
                assert_eq!(
                    &run.execution.outcome,
                    outcome,
                    "replay diverged on a collision from {:?}",
                    cfg.positions()
                );
            }
        }
    }
    assert!(collisions > 50, "the seeded hunt must surface plenty of collisions: {collisions}");
}

#[test]
fn frozen_coordinates_block_like_live_robots() {
    // A frozen robot still occupies its node: a live robot stepping
    // onto it collides exactly as if it were live and idle.
    let march = robots::FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
    let two = Configuration::new([trigrid::ORIGIN, Coord::new(2, 0)]);
    let active = vec![true, true];
    let frozen = vec![false, true];
    let result = engine::step_frozen(&two, &march, &active, &frozen);
    assert!(matches!(result, Err(robots::RoundCollision::SharedTarget { .. })));
}
