//! Property-based pin of the ASYNC discretisation against the engine:
//! advancing one robot's two ASYNC phases **back-to-back** (Look+Compute
//! then Move, with no interleaving) is step-for-step equivalent to the
//! sequential SSYNC singleton-activation round on the old engine path
//! (`engine::compute_moves` + `engine::step_moves`). This is the
//! containment half of the DESIGN.md §13 soundness argument: every
//! SSYNC singleton schedule is an ASYNC schedule, so the ASYNC
//! adversary is at least as strong as the sequential SSYNC one.

use proptest::prelude::*;
use robots::async_model::{advance_phase, PhaseAdvance};
use robots::{engine, Algorithm, Configuration, PackedPending, View};
use trigrid::Dir;

/// Strategy: a connected configuration of `n` robots grown from the
/// origin (deterministic given the choice list) — the same random
/// connected-polyhex generator the crash-model proptests use.
fn connected_config(n: usize) -> impl Strategy<Value = Configuration> {
    proptest::collection::vec((0usize..64, 0usize..6), n - 1).prop_map(move |choices| {
        let mut cells = vec![trigrid::ORIGIN];
        for (anchor_raw, dir_raw) in choices {
            for probe in 0..cells.len() {
                let anchor = cells[(anchor_raw + probe) % cells.len()];
                let mut done = false;
                for k in 0..6 {
                    let cand = anchor.step(Dir::from_index(dir_raw + k));
                    if !cells.contains(&cand) {
                        cells.push(cand);
                        done = true;
                        break;
                    }
                }
                if done {
                    break;
                }
            }
        }
        Configuration::new(cells)
    })
}

/// Strategy: a random total visibility-1 algorithm as a 64-entry table.
fn random_rule_table() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..7, 64)
}

struct VecTable(Vec<u8>);

impl Algorithm for VecTable {
    fn radius(&self) -> u32 {
        1
    }
    fn compute(&self, view: &View) -> Option<Dir> {
        let code = self.0[view.bits() as usize];
        (code != 0).then(|| Dir::from_index((code - 1) as usize))
    }
}

/// One SSYNC round that activates exactly slot `s`, through the
/// engine's round semantics. `Ok(None)` = the robot stays (no round
/// effect); `Ok(Some(cfg))` = the legal successor; `Err` = collision.
fn ssync_singleton(
    cfg: &Configuration,
    s: usize,
    algo: &impl Algorithm,
) -> Result<Option<Configuration>, robots::RoundCollision> {
    let decisions = engine::compute_moves(cfg, algo);
    let mut one = vec![None; cfg.len()];
    one[s] = decisions[s];
    if one.iter().all(Option::is_none) {
        return Ok(None);
    }
    engine::step_moves(cfg, &one).map(|r| Some(r.config))
}

/// The same robot's two ASYNC phases, advanced back-to-back from an
/// all-idle state: Look+Compute captures the decision, then the Move
/// executes immediately — no other robot interleaves.
fn async_back_to_back(
    cfg: &Configuration,
    s: usize,
    algo: &impl Algorithm,
) -> Result<Option<Configuration>, robots::RoundCollision> {
    match advance_phase(cfg, PackedPending::IDLE, s, algo)? {
        PhaseAdvance::Stayed => Ok(None),
        PhaseAdvance::Looked(captured) => match advance_phase(cfg, captured, s, algo)? {
            PhaseAdvance::Moved { config, pending } => {
                assert!(pending.is_idle(), "no other robot holds a pending move");
                Ok(Some(config))
            }
            _ => unreachable!("a pending robot always moves"),
        },
        PhaseAdvance::Moved { .. } => unreachable!("an all-idle state has nothing to execute"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Step-for-step equivalence along a random sequence of singleton
    /// activations: identical successors, identical stays, identical
    /// collisions — until the walk collides or disconnects, exactly
    /// together.
    #[test]
    fn back_to_back_phases_match_singleton_ssync_rounds(
        initial in connected_config(5),
        table in random_rule_table(),
        picks in proptest::collection::vec(0usize..8, 24),
    ) {
        let algo = VecTable(table);
        let mut ssync = initial.clone();
        let mut lcm = initial;
        for pick in picks {
            prop_assert_eq!(&ssync, &lcm, "the walks must stay in lock-step");
            let s = pick % ssync.len();
            match (ssync_singleton(&ssync, s, &algo), async_back_to_back(&lcm, s, &algo)) {
                (Ok(None), Ok(None)) => {}
                (Ok(Some(a)), Ok(Some(b))) => {
                    prop_assert_eq!(&a, &b, "successors diverged at slot {}", s);
                    if !a.is_connected() {
                        break; // both executions terminate here
                    }
                    ssync = a;
                    lcm = b;
                }
                (Err(a), Err(b)) => {
                    prop_assert_eq!(a, b, "collisions diverged at slot {}", s);
                    break;
                }
                (a, b) => {
                    prop_assert!(false, "paths diverged at slot {}: engine {:?} vs async {:?}", s, a, b);
                }
            }
        }
    }
}
