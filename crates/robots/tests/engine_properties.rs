//! Property-based tests of the Look-Compute-Move engine: collision
//! detection, move application and view extraction under random
//! configurations and random (rule-table) algorithms.

use proptest::prelude::*;
use robots::{engine, Algorithm, Configuration, FnAlgorithm, Limits, Outcome, View};
use trigrid::{Coord, Dir};

/// Strategy: a connected configuration of `n` robots grown from the
/// origin (deterministic given the choice list).
fn connected_config(n: usize) -> impl Strategy<Value = Configuration> {
    proptest::collection::vec((0usize..64, 0usize..6), n - 1).prop_map(move |choices| {
        let mut cells = vec![trigrid::ORIGIN];
        for (anchor_raw, dir_raw) in choices {
            // Attach a new cell adjacent to an existing one.
            for probe in 0..cells.len() {
                let anchor = cells[(anchor_raw + probe) % cells.len()];
                let mut done = false;
                for k in 0..6 {
                    let cand = anchor.step(Dir::from_index(dir_raw + k));
                    if !cells.contains(&cand) {
                        cells.push(cand);
                        done = true;
                        break;
                    }
                }
                if done {
                    break;
                }
            }
        }
        Configuration::new(cells)
    })
}

/// Strategy: a random total visibility-1 algorithm as a 64-entry table.
fn random_rule_table() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..7, 64)
}

struct VecTable(Vec<u8>);

impl Algorithm for VecTable {
    fn radius(&self) -> u32 {
        1
    }
    fn compute(&self, view: &View) -> Option<Dir> {
        let code = self.0[view.bits() as usize];
        (code != 0).then(|| Dir::from_index((code - 1) as usize))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_configs_are_connected(cfg in connected_config(7)) {
        prop_assert_eq!(cfg.len(), 7);
        prop_assert!(cfg.is_connected());
    }

    #[test]
    fn robot_count_is_conserved_by_any_legal_round(
        cfg in connected_config(7),
        table in random_rule_table(),
    ) {
        let algo = VecTable(table);
        // Collisions are legal outcomes of random rules; only legal
        // rounds carry obligations.
        if let Ok((next, moves)) = engine::step(&cfg, &algo) {
            prop_assert_eq!(next.len(), cfg.len());
            prop_assert!(moves.len() <= cfg.len());
            // Every reported move starts at an old position and ends
            // one step away.
            for m in &moves {
                prop_assert!(cfg.contains(m.from));
                prop_assert_eq!(m.from.distance(m.to()), 1);
                prop_assert!(next.contains(m.to()));
            }
        }
    }

    #[test]
    fn check_moves_catches_every_duplicate_destination(
        cfg in connected_config(6),
        table in random_rule_table(),
    ) {
        let algo = VecTable(table);
        let moves = engine::compute_moves(&cfg, &algo);
        let mut dests: Vec<Coord> = cfg
            .positions()
            .iter()
            .zip(&moves)
            .map(|(&p, m)| m.map_or(p, |d| p.step(d)))
            .collect();
        dests.sort();
        let has_duplicate = dests.windows(2).any(|w| w[0] == w[1]);
        let verdict = engine::check_moves(&cfg, &moves);
        if has_duplicate {
            prop_assert!(verdict.is_err(), "duplicate destination must be a collision");
        } else {
            // No duplicates: the only remaining illegal pattern is a swap.
            if let Err(e) = verdict {
                let is_swap = matches!(e, robots::RoundCollision::Swap { .. });
                prop_assert!(is_swap, "without duplicates only swaps may be reported, got {e:?}");
            }
        }
    }

    #[test]
    fn executions_terminate_with_a_definite_outcome(
        cfg in connected_config(7),
        table in random_rule_table(),
    ) {
        let algo = VecTable(table);
        let limits = Limits { max_rounds: 5000, detect_livelock: true };
        let ex = engine::run(&cfg, &algo, limits);
        // With livelock detection on, random deterministic rules must
        // resolve well before the cap (the connected class space is 3652
        // and any disconnection/collision terminates immediately).
        let hit_cap = matches!(ex.outcome, Outcome::StepLimit { .. });
        prop_assert!(
            !hit_cap,
            "deterministic FSYNC must fixpoint, cycle, collide or disconnect, got {:?}",
            ex.outcome
        );
    }

    #[test]
    fn views_are_consistent_with_configurations(cfg in connected_config(7)) {
        for &p in cfg.positions() {
            for radius in 1..=2u32 {
                let v = View::observe(&cfg, p, radius);
                for &label in robots::view::labels(radius) {
                    prop_assert_eq!(v.is_robot(label), cfg.contains(p + label));
                }
                prop_assert_eq!(
                    v.robot_count() as usize,
                    robots::view::labels(radius)
                        .iter()
                        .filter(|&&l| cfg.contains(p + l))
                        .count()
                );
            }
        }
    }

    #[test]
    fn stationary_algorithms_fixpoint_immediately(cfg in connected_config(7)) {
        let stay = FnAlgorithm::new(1, "stay", |_: &View| None);
        let ex = engine::run(&cfg, &stay, Limits::default());
        let fixpointed = matches!(
            ex.outcome,
            Outcome::StuckFixpoint { rounds: 0 } | Outcome::Gathered { rounds: 0 }
        );
        prop_assert!(fixpointed);
        prop_assert_eq!(ex.final_config, cfg);
    }
}
