//! The `Scheduler` trait contract, checked from outside the crate:
//! all-`false` selections are promoted to full activation (fairness),
//! round-robin activates exactly one robot per round, and the random
//! scheduler is a deterministic function of its seed.

use robots::sched::{run_scheduled, FullSync, RandomSubset, RoundRobin, Scheduler};
use robots::{Configuration, FnAlgorithm, Limits, Outcome, View};
use trigrid::{Coord, Dir, ORIGIN};

/// A scheduler that never selects anyone — the engine must treat every
/// round as fully active, or executions would stall forever.
struct NeverActive;

impl Scheduler for NeverActive {
    fn select(&mut self, _round: usize, n: usize) -> Vec<bool> {
        vec![false; n]
    }
    fn name(&self) -> &str {
        "never-active"
    }
}

#[test]
fn all_false_selection_activates_everyone() {
    // A lone robot marching east under NeverActive: if the all-false
    // fairness promotion did not kick in, no round would move anyone
    // and the robot would stay at the origin through the cap. With the
    // promotion, every round is fully active and the robot covers
    // exactly max_rounds steps.
    let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
    let lone = Configuration::new([ORIGIN]);
    let limits = Limits { max_rounds: 12, detect_livelock: false };
    let ex = run_scheduled(&lone, &march, &mut NeverActive, limits);
    assert_eq!(ex.outcome, Outcome::StepLimit { rounds: 12 });
    assert_eq!(ex.final_config, Configuration::new([Coord::new(24, 0)]));
}

#[test]
fn full_sync_selects_everyone_every_round() {
    for round in 0..8 {
        for n in [1, 3, 7] {
            assert_eq!(FullSync.select(round, n), vec![true; n]);
        }
    }
}

#[test]
fn round_robin_activates_exactly_one_per_round() {
    let mut rr = RoundRobin;
    for n in [1, 2, 7] {
        for round in 0..(3 * n) {
            let flags = rr.select(round, n);
            assert_eq!(flags.len(), n);
            assert_eq!(flags.iter().filter(|&&b| b).count(), 1, "round {round}, n={n}");
            assert!(flags[round % n], "round-robin must cycle in index order");
        }
    }
}

#[test]
fn round_robin_covers_all_robots_in_n_rounds() {
    let mut rr = RoundRobin;
    let n = 7;
    let mut seen = vec![false; n];
    for round in 0..n {
        let flags = rr.select(round, n);
        let who = flags.iter().position(|&b| b).expect("one active robot");
        seen[who] = true;
    }
    assert!(seen.iter().all(|&s| s), "every robot activated within n rounds");
}

#[test]
fn random_subset_is_deterministic_per_seed() {
    let mut a = RandomSubset::new(42, 0.4);
    let mut b = RandomSubset::new(42, 0.4);
    let mut c = RandomSubset::new(43, 0.4);
    let mut all_equal_across_seeds = true;
    for round in 0..200 {
        let fa = a.select(round, 7);
        let fb = b.select(round, 7);
        let fc = c.select(round, 7);
        assert_eq!(fa, fb, "same seed must produce identical schedules (round {round})");
        assert!(fa.iter().any(|&x| x), "selection is never empty (round {round})");
        all_equal_across_seeds &= fa == fc;
    }
    assert!(!all_equal_across_seeds, "different seeds should diverge somewhere in 200 rounds");
}

#[test]
fn random_subset_scheduled_runs_are_reproducible() {
    // Same seed ⇒ bit-identical execution, including the final
    // configuration, for a nontrivial multi-robot run.
    let march = FnAlgorithm::new(1, "march", |v: &View| {
        // March east unless the eastern neighbour is occupied.
        if v.neighbor(Dir::E) {
            None
        } else {
            Some(Dir::E)
        }
    });
    let line = Configuration::new([ORIGIN, Coord::new(2, 0), Coord::new(4, 0)]);
    let limits = Limits { max_rounds: 50, detect_livelock: false };
    let run = |seed: u64| {
        let mut sched = RandomSubset::new(seed, 0.5);
        run_scheduled(&line, &march, &mut sched, limits)
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.final_config, b.final_config);
}
