//! The `Scheduler` trait contract, checked from outside the crate:
//! all-`false` selections are promoted to full activation (fairness),
//! round-robin activates exactly one robot per round, and the random
//! scheduler is a deterministic function of its seed.

use robots::sched::{run_scheduled, FullSync, RandomSubset, RoundRobin, Scheduler};
use robots::{Configuration, FnAlgorithm, Limits, Outcome, View};
use trigrid::{Coord, Dir, ORIGIN};

/// A scheduler that never selects anyone — the engine must treat every
/// round as fully active, or executions would stall forever.
struct NeverActive;

impl Scheduler for NeverActive {
    fn select(&mut self, _round: usize, n: usize) -> Vec<bool> {
        vec![false; n]
    }
    fn name(&self) -> &str {
        "never-active"
    }
}

#[test]
fn all_false_selection_activates_everyone() {
    // A lone robot marching east under NeverActive: if the all-false
    // fairness promotion did not kick in, no round would move anyone
    // and the robot would stay at the origin through the cap. With the
    // promotion, every round is fully active and the robot covers
    // exactly max_rounds steps.
    let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
    let lone = Configuration::new([ORIGIN]);
    let limits = Limits { max_rounds: 12, detect_livelock: false };
    let ex = run_scheduled(&lone, &march, &mut NeverActive, limits);
    assert_eq!(ex.outcome, Outcome::StepLimit { rounds: 12 });
    assert_eq!(ex.final_config, Configuration::new([Coord::new(24, 0)]));
}

#[test]
fn full_sync_selects_everyone_every_round() {
    for round in 0..8 {
        for n in [1, 3, 7] {
            assert_eq!(FullSync.select(round, n), vec![true; n]);
        }
    }
}

#[test]
fn round_robin_activates_exactly_one_per_round() {
    let mut rr = RoundRobin;
    for n in [1, 2, 7] {
        for round in 0..(3 * n) {
            let flags = rr.select(round, n);
            assert_eq!(flags.len(), n);
            assert_eq!(flags.iter().filter(|&&b| b).count(), 1, "round {round}, n={n}");
            assert!(flags[round % n], "round-robin must cycle in index order");
        }
    }
}

#[test]
fn round_robin_covers_all_robots_in_n_rounds() {
    let mut rr = RoundRobin;
    let n = 7;
    let mut seen = vec![false; n];
    for round in 0..n {
        let flags = rr.select(round, n);
        let who = flags.iter().position(|&b| b).expect("one active robot");
        seen[who] = true;
    }
    assert!(seen.iter().all(|&s| s), "every robot activated within n rounds");
}

#[test]
fn random_subset_is_deterministic_per_seed() {
    let mut a = RandomSubset::new(42, 0.4);
    let mut b = RandomSubset::new(42, 0.4);
    let mut c = RandomSubset::new(43, 0.4);
    let mut all_equal_across_seeds = true;
    for round in 0..200 {
        let fa = a.select(round, 7);
        let fb = b.select(round, 7);
        let fc = c.select(round, 7);
        assert_eq!(fa, fb, "same seed must produce identical schedules (round {round})");
        assert!(fa.iter().any(|&x| x), "selection is never empty (round {round})");
        all_equal_across_seeds &= fa == fc;
    }
    assert!(!all_equal_across_seeds, "different seeds should diverge somewhere in 200 rounds");
}

#[test]
fn nondeterministic_schedulers_hit_the_cap_not_livelock() {
    // A lone marcher's translation class repeats every single round,
    // and no activation subset can ever collide or disconnect it: with
    // livelock detection correctly disabled for a non-deterministic
    // scheduler, the run must terminate with the round cap
    // (`StepLimit`) — never a spurious `Livelock`, which is only sound
    // for deterministic round-independent schedulers.
    let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
    let lone = Configuration::new([ORIGIN]);
    for seed in 0..5 {
        let limits = Limits { max_rounds: 60, detect_livelock: false };
        let mut sched = RandomSubset::new(seed, 0.5);
        let ex = run_scheduled(&lone, &march, &mut sched, limits);
        assert_eq!(
            ex.outcome,
            Outcome::StepLimit { rounds: 60 },
            "seed {seed}: repeating classes must run to the cap"
        );
    }
}

#[test]
fn round_robin_with_detection_disabled_reaches_the_cap() {
    // Round-robin is deterministic but *round-dependent*: the sweep
    // pipeline disables class-repetition detection for it. Pin that a
    // repeating execution then ends at the cap rather than `Livelock`.
    let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
    let lone = Configuration::new([ORIGIN]);
    let limits = Limits { max_rounds: 25, detect_livelock: false };
    let ex = run_scheduled(&lone, &march, &mut RoundRobin, limits);
    assert_eq!(ex.outcome, Outcome::StepLimit { rounds: 25 });
}

#[test]
fn fullsync_livelock_detection_matches_the_engine() {
    // Under FullSync the scheduled runner with detection on must agree
    // with the FSYNC engine even on Livelock outcomes — the shared
    // engine loop makes this exact.
    let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
    let pair = Configuration::new([ORIGIN, Coord::new(2, 0)]);
    let limits = Limits { max_rounds: 500, detect_livelock: true };
    let fsync = robots::engine::run(&pair, &march, limits);
    let scheduled = run_scheduled(&pair, &march, &mut FullSync, limits);
    assert_eq!(fsync.outcome, Outcome::Livelock { entry: 0, period: 1 });
    assert_eq!(scheduled.outcome, fsync.outcome);
    assert_eq!(scheduled.final_config, fsync.final_config);
}

#[test]
fn replay_scheduler_reproduces_recorded_masks_then_promotes_to_full() {
    use robots::sched::ScheduleReplay;
    let mut replay = ScheduleReplay::new(vec![0b001, 0b110]);
    assert_eq!(replay.len(), 2);
    assert!(!replay.is_empty());
    assert_eq!(replay.select(0, 3), vec![true, false, false]);
    assert_eq!(replay.select(1, 3), vec![false, true, true]);
    // Beyond the recorded schedule: everyone, every round.
    assert_eq!(replay.select(2, 3), vec![true, true, true]);
}

#[test]
fn random_subset_scheduled_runs_are_reproducible() {
    // Same seed ⇒ bit-identical execution, including the final
    // configuration, for a nontrivial multi-robot run.
    let march = FnAlgorithm::new(1, "march", |v: &View| {
        // March east unless the eastern neighbour is occupied.
        if v.neighbor(Dir::E) {
            None
        } else {
            Some(Dir::E)
        }
    });
    let line = Configuration::new([ORIGIN, Coord::new(2, 0), Coord::new(4, 0)]);
    let limits = Limits { max_rounds: 50, detect_livelock: false };
    let run = |seed: u64| {
        let mut sched = RandomSubset::new(seed, 0.5);
        run_scheduled(&line, &march, &mut sched, limits)
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.final_config, b.final_config);
}
