//! Property-based parity pins for the flat open-addressed interning
//! table ([`FlatKeyIndex`]) against a reference `HashMap` model: every
//! insert/get sequence must agree with the model on membership, on the
//! returned dense ids, and on the new/known flag — and ids must be
//! assigned in insertion order (the digest-stability invariant the
//! explorer's state numbering rests on). The configuration-keyed
//! wrappers ([`ClassArena`], [`ClassMap`], [`ClassSet`]) are pinned at
//! every supported robot count, and the unpacked-key fallback path of
//! [`ClassMap`] is exercised with beyond-window configurations.

use proptest::prelude::*;
use robots::visited::{ClassArena, ClassMap, ClassSet, FlatKeyIndex};
use robots::{Configuration, PackedClass};
use std::collections::HashMap;
use trigrid::Dir;

/// Grows a connected configuration from the origin, one robot per
/// choice (deterministic given the choice list) — the same random
/// connected-polyhex generator the packed-key proptests use.
fn grow_connected(choices: &[(usize, usize)]) -> Configuration {
    let mut cells = vec![trigrid::ORIGIN];
    for &(anchor_raw, dir_raw) in choices {
        for probe in 0..cells.len() {
            let anchor = cells[(anchor_raw + probe) % cells.len()];
            let mut done = false;
            for k in 0..6 {
                let cand = anchor.step(Dir::from_index(dir_raw + k));
                if !cells.contains(&cand) {
                    cells.push(cand);
                    done = true;
                    break;
                }
            }
            if done {
                break;
            }
        }
    }
    Configuration::new(cells)
}

/// Strategy: a batch of keys with deliberate collisions — half the
/// draws come from a tiny dense domain (forcing duplicate inserts and
/// adjacent probe chains), half are arbitrary wide words.
fn key_batch() -> impl Strategy<Value = Vec<u128>> {
    proptest::collection::vec((0u64..2, 0u64..64, 0u64..u64::MAX), 200).prop_map(|draws| {
        draws
            .into_iter()
            .map(
                |(tag, small, wide)| {
                    if tag == 0 {
                        u128::from(small) << 7
                    } else {
                        u128::from(wide)
                    }
                },
            )
            .collect()
    })
}

proptest! {
    /// Interleaved `insert_full`/`get` agree with a `HashMap` model,
    /// and dense ids are exactly the first-insertion order.
    #[test]
    fn flat_index_matches_hashmap_model(keys in key_batch()) {
        let mut flat = FlatKeyIndex::new();
        let mut model: HashMap<u128, u32> = HashMap::new();
        let mut order: Vec<u128> = Vec::new();
        for &key in &keys {
            prop_assert_eq!(flat.get(key), model.get(&key).copied());
            let (id, new) = flat.insert_full(key);
            match model.get(&key) {
                Some(&known) => {
                    prop_assert!(!new);
                    prop_assert_eq!(id, known);
                }
                None => {
                    prop_assert!(new);
                    prop_assert_eq!(id as usize, order.len(), "ids follow insertion order");
                    model.insert(key, id);
                    order.push(key);
                }
            }
        }
        prop_assert_eq!(flat.len(), model.len());
        // Every interned key answers with its original id afterwards.
        for (i, &key) in order.iter().enumerate() {
            prop_assert_eq!(flat.get(key), Some(i as u32));
        }
    }

    /// `clear()` resets the id space without perturbing parity: a
    /// cleared (pooled) table replays a fresh insertion history with
    /// identical ids.
    #[test]
    fn cleared_flat_index_replays_like_fresh(first in key_batch(), second in key_batch()) {
        let mut pooled = FlatKeyIndex::new();
        for &key in &first {
            pooled.insert_full(key);
        }
        pooled.clear();
        let mut fresh = FlatKeyIndex::new();
        for &key in &second {
            prop_assert_eq!(pooled.insert_full(key), fresh.insert_full(key));
            prop_assert_eq!(pooled.live_bytes(), fresh.live_bytes());
        }
    }

    /// [`ClassArena`] interning agrees with a key-level model at every
    /// supported robot count: dense ids in insertion order, lookups
    /// stable, the stored representative canonical.
    #[test]
    fn class_arena_matches_model_across_robot_counts(
        n in 2usize..PackedClass::MAX_ROBOTS + 1,
        choices in proptest::collection::vec(
            proptest::collection::vec((0usize..64, 0usize..6), PackedClass::MAX_ROBOTS - 1),
            24,
        ),
    ) {
        let mut arena = ClassArena::new();
        let mut model: HashMap<u128, u32> = HashMap::new();
        for raw in &choices {
            let cfg = grow_connected(&raw[..n - 1]);
            let key = cfg.canonical_key();
            prop_assert_eq!(arena.lookup_key(key), model.get(&key.bits()).copied());
            let (id, new) = arena.intern(&cfg);
            match model.get(&key.bits()) {
                Some(&known) => {
                    prop_assert!(!new);
                    prop_assert_eq!(id, known);
                }
                None => {
                    prop_assert!(new);
                    prop_assert_eq!(id as usize, model.len(), "ids follow insertion order");
                    model.insert(key.bits(), id);
                }
            }
            prop_assert_eq!(arena.get(id), &cfg.canonical());
        }
        prop_assert_eq!(arena.len(), model.len());
    }

    /// [`ClassMap`] insert/get (including overwrites) agree with a
    /// key-level model, and [`ClassSet`] with the induced set.
    #[test]
    fn class_map_and_set_match_model(
        n in 2usize..PackedClass::MAX_ROBOTS + 1,
        entries in proptest::collection::vec(
            (
                proptest::collection::vec((0usize..64, 0usize..6), PackedClass::MAX_ROBOTS - 1),
                0u32..u32::MAX,
            ),
            24,
        ),
    ) {
        let mut map: ClassMap<u32> = ClassMap::new();
        let mut set = ClassSet::new();
        let mut model: HashMap<u128, u32> = HashMap::new();
        for (raw, value) in &entries {
            let cfg = grow_connected(&raw[..n - 1]);
            let key = cfg.canonical_key().bits();
            prop_assert_eq!(map.get(&cfg).copied(), model.get(&key).copied());
            let was_new = !model.contains_key(&key);
            prop_assert_eq!(map.insert(&cfg, *value), model.insert(key, *value));
            prop_assert_eq!(set.insert(&cfg), was_new);
            prop_assert!(set.contains(&cfg));
        }
        prop_assert_eq!(map.len(), model.len());
        prop_assert_eq!(set.len(), model.len());
    }
}

/// Beyond-window configurations (more robots than a packed key holds)
/// transparently use the unpacked-key fallback — and mix freely with
/// packed-path entries in one map.
#[test]
fn class_map_fallback_key_path_mixes_with_packed() {
    // 14 robots: no packed key exists, so this class must take the
    // wide fallback.
    let wide_choices: Vec<(usize, usize)> = (0..13).map(|i| (i * 3, i % 6)).collect();
    let wide = grow_connected(&wide_choices);
    assert!(wide.try_canonical_key().is_none(), "14 robots must exceed the packed window");
    let narrow = grow_connected(&[(0, 0), (1, 2), (2, 4)]);
    assert!(narrow.try_canonical_key().is_some());

    let mut map: ClassMap<&str> = ClassMap::new();
    assert_eq!(map.insert(&wide, "wide"), None);
    assert_eq!(map.insert(&narrow, "narrow"), None);
    assert_eq!(map.len(), 2);
    assert_eq!(map.get(&wide), Some(&"wide"));
    assert_eq!(map.get(&narrow), Some(&"narrow"));
    // Overwrites hand back the previous value on both paths.
    assert_eq!(map.insert(&wide, "wide2"), Some("wide"));
    assert_eq!(map.insert(&narrow, "narrow2"), Some("narrow"));
    assert_eq!(map.len(), 2);

    // A translated copy of the wide configuration is the same class.
    let shifted =
        Configuration::new(wide.positions().iter().map(|&p| p + trigrid::Coord::new(4, 2)));
    assert_eq!(map.get(&shifted), Some(&"wide2"));

    let mut set = ClassSet::new();
    assert!(set.insert(&wide));
    assert!(!set.insert(&shifted), "translates share one wide class");
    assert!(set.contains(&wide));
    assert_eq!(set.len(), 1);
}
