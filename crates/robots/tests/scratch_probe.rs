//! Scratch probe (not part of the PR): hunt for Collision refutations
//! at round >= 1 and check replay outcome equality.

use robots::faults::{self, CrashChecker, CrashOptions, CrashVerdict};
use robots::{Algorithm, Configuration, Outcome, View};
use trigrid::{Coord, Dir};

struct VecTable(Vec<u8>);

impl Algorithm for VecTable {
    fn radius(&self) -> u32 {
        1
    }
    fn compute(&self, view: &View) -> Option<Dir> {
        let code = self.0[view.bits() as usize];
        (code != 0).then(|| Dir::from_index((code - 1) as usize))
    }
}

// Simple deterministic LCG so the probe needs no rand dependency.
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn connected(n: usize, rng: &mut Lcg) -> Configuration {
    let mut cells = vec![trigrid::ORIGIN];
    while cells.len() < n {
        let anchor = cells[(rng.next() as usize) % cells.len()];
        let d = Dir::from_index(rng.next() as usize % 6);
        let cand = anchor.step(d);
        if !cells.contains(&cand) {
            cells.push(cand);
        }
    }
    Configuration::new(cells)
}

#[test]
fn probe_collision_rounds() {
    let mut rng = Lcg(0xDEADBEEF);
    let mut deep_collisions = 0usize;
    let mut mismatches = 0usize;
    for trial in 0..400 {
        let table: Vec<u8> = (0..64).map(|_| (rng.next() % 7) as u8).collect();
        let algo = VecTable(table);
        let cfg = connected(5, &mut rng).canonical();
        let checker = CrashChecker::new(&algo, CrashOptions::default());
        let report = checker.check(&cfg);
        if let CrashVerdict::Refuted { outcome, .. } = &report.verdict {
            if let Outcome::Collision { round, .. } = outcome {
                if *round >= 1 {
                    deep_collisions += 1;
                    let run = faults::replay(&cfg, &algo, &report.verdict).unwrap();
                    if &run.execution.outcome != outcome {
                        mismatches += 1;
                        if mismatches <= 3 {
                            eprintln!(
                                "trial {trial}: cfg {:?}\n verdict {outcome:?}\n replay  {:?}",
                                cfg.positions(),
                                run.execution.outcome
                            );
                        }
                    }
                }
            }
        }
    }
    eprintln!("deep collisions: {deep_collisions}, mismatches: {mismatches}");
    assert_eq!(mismatches, 0, "replay diverged on {mismatches} deep collisions");
    let _ = Coord::new(0, 0);
}
