//! Property-based pins for the packed translation-class keys: the
//! `Configuration` ↔ `u128` encoding is a lossless roundtrip on
//! canonical configurations, `canonical_key()` agrees with the
//! materializing `canonical().pack()` path on arbitrary translates of
//! random connected polyhexes, and key equality is exactly class
//! equality. The `ClassArena` built on the keys must intern every
//! class once.

use proptest::prelude::*;
use robots::visited::{ClassArena, ClassMap, ClassSet};
use robots::{Configuration, PackedClass};
use trigrid::{Coord, Dir};

/// Grows a connected configuration from the origin, one robot per
/// choice (deterministic given the choice list) — the same random
/// connected-polyhex generator the crash-model proptests use.
fn grow_connected(choices: &[(usize, usize)]) -> Configuration {
    let mut cells = vec![trigrid::ORIGIN];
    for &(anchor_raw, dir_raw) in choices {
        for probe in 0..cells.len() {
            let anchor = cells[(anchor_raw + probe) % cells.len()];
            let mut done = false;
            for k in 0..6 {
                let cand = anchor.step(Dir::from_index(dir_raw + k));
                if !cells.contains(&cand) {
                    cells.push(cand);
                    done = true;
                    break;
                }
            }
            if done {
                break;
            }
        }
    }
    Configuration::new(cells)
}

/// Strategy: a connected configuration of exactly `n` robots.
fn connected_config(n: usize) -> impl Strategy<Value = Configuration> {
    proptest::collection::vec((0usize..64, 0usize..6), n - 1)
        .prop_map(move |choices| grow_connected(&choices))
}

/// Strategy: a connected configuration of any supported robot count
/// (2..=[`PackedClass::MAX_ROBOTS`]). The shim's vectors are
/// fixed-length, so a maximal choice list is generated and the first
/// `n - 1` choices used.
fn any_supported_config() -> impl Strategy<Value = Configuration> {
    (
        2usize..PackedClass::MAX_ROBOTS + 1,
        proptest::collection::vec((0usize..64, 0usize..6), PackedClass::MAX_ROBOTS - 1),
    )
        .prop_map(|(n, choices)| grow_connected(&choices[..n - 1]))
}

/// Strategy: a lattice translation vector (x + y even).
fn delta() -> impl Strategy<Value = Coord> {
    (-20i32..20, -10i32..10).prop_map(|(h, y)| Coord::new(2 * h + (y & 1), y))
}

proptest! {
    #[test]
    fn pack_unpack_roundtrips_canonical_configurations(
        cfg in connected_config(7),
        d in delta(),
    ) {
        let canonical = cfg.translate(d).canonical();
        prop_assert_eq!(canonical.pack().unpack(), canonical.clone());
        prop_assert_eq!(canonical.pack().robots(), canonical.len());
    }

    #[test]
    fn canonical_key_equals_canonical_then_pack(
        cfg in connected_config(7),
        d in delta(),
    ) {
        let translated = cfg.translate(d);
        prop_assert_eq!(translated.canonical_key(), translated.canonical().pack());
        // The key names the translation class: every translate agrees.
        prop_assert_eq!(translated.canonical_key(), cfg.canonical_key());
    }

    #[test]
    fn key_equality_is_class_equality(
        a in connected_config(6),
        b in connected_config(6),
    ) {
        prop_assert_eq!(
            a.canonical_key() == b.canonical_key(),
            a.canonical() == b.canonical(),
            "packed keys must induce exactly the translation-class partition"
        );
    }

    #[test]
    fn pack_unpack_roundtrips_at_every_supported_count(
        cfg in any_supported_config(),
        d in delta(),
    ) {
        let canonical = cfg.translate(d).canonical();
        prop_assert_eq!(canonical.pack().unpack(), canonical.clone());
        prop_assert_eq!(canonical.pack().robots(), canonical.len());
        prop_assert_eq!(cfg.translate(d).canonical_key(), canonical.pack());
    }

    #[test]
    fn key_partition_is_class_partition_at_every_supported_count(
        a in any_supported_config(),
        b in any_supported_config(),
    ) {
        // Covers mixed robot counts too: keys of different-size
        // classes must never collide (the packed length prefix).
        prop_assert_eq!(
            a.canonical_key() == b.canonical_key(),
            a.canonical() == b.canonical(),
            "packed keys must induce exactly the translation-class partition"
        );
    }

    #[test]
    fn of_cells_matches_the_configuration_path(cfg in connected_config(5), d in delta()) {
        let translated = cfg.translate(d);
        prop_assert_eq!(
            PackedClass::of_cells(translated.positions()),
            translated.canonical_key()
        );
    }

    #[test]
    fn arena_and_class_map_agree_on_interning(
        cfg in connected_config(7),
        d in delta(),
    ) {
        let translated = cfg.translate(d);
        let mut arena = ClassArena::new();
        let (id_a, new_a) = arena.intern(&cfg);
        let (id_b, new_b) = arena.intern(&translated);
        prop_assert!(new_a);
        prop_assert!(!new_b, "a translate must hit the interned class");
        prop_assert_eq!(id_a, id_b);
        prop_assert_eq!(arena.get(id_a), &cfg.canonical());

        let mut set = ClassSet::new();
        prop_assert!(set.insert(&cfg));
        prop_assert!(!set.insert(&translated));
        prop_assert!(set.contains(&translated));

        let mut map: ClassMap<u32> = ClassMap::new();
        prop_assert_eq!(map.insert(&cfg, 1), None);
        prop_assert_eq!(map.insert(&translated, 2), Some(1));
        prop_assert_eq!(map.get_key(translated.canonical_key()), Some(&2));
    }
}

/// Exhaustive pin on the full enumerated space: the 3652 seven-robot
/// classes map to 3652 distinct keys, every one of which roundtrips.
#[test]
fn all_seven_robot_classes_have_distinct_roundtripping_keys() {
    let mut arena = ClassArena::new();
    for cells in polyhex::enumerate_fixed(7) {
        let cfg = Configuration::new(cells);
        let key = cfg.canonical_key();
        assert_eq!(key.unpack(), cfg, "enumerated classes are canonical already");
        let (_, new) = arena.intern_key(key);
        assert!(new, "distinct classes must intern to distinct keys: {cfg:?}");
    }
    assert_eq!(arena.len(), 3652);
}

/// The same exhaustive pin across every class space the sweeps cover
/// up to n = 8 (OEIS A001207): per-n key counts equal class counts,
/// so the key partition is exactly the class partition on each space.
#[test]
fn enumerated_classes_have_distinct_keys_per_count() {
    for (n, expected) in [(2, 3usize), (3, 11), (4, 44), (5, 186), (6, 814), (8, 16_689)] {
        let mut arena = ClassArena::new();
        for cells in polyhex::enumerate_fixed(n) {
            let cfg = Configuration::new(cells);
            let key = cfg.canonical_key();
            assert_eq!(key.unpack(), cfg, "n={n}: enumerated classes are canonical already");
            let (_, new) = arena.intern_key(key);
            assert!(new, "n={n}: distinct classes must intern to distinct keys: {cfg:?}");
        }
        assert_eq!(arena.len(), expected, "n={n}");
    }
}
