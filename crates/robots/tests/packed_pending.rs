//! Property-based pins for the packed ASYNC pending-vector keys,
//! mirroring `packed_class.rs`: the `Vec<Option<Dir>>` ↔ `u32`
//! encoding is a lossless roundtrip, key equality is exactly
//! pending-vector equality (so `(class, PackedPending)` state equality
//! is exactly ASYNC-state equality), and slot permutation on the
//! packed form agrees with permuting the unpacked vector.

use proptest::prelude::*;
use robots::{PackedClass, PackedPending};
use trigrid::Dir;

/// Full packed window: one slot per supported robot.
const SLOTS: usize = PackedClass::MAX_ROBOTS;

/// Strategy: a pending vector filling the full packed window
/// ([`PackedPending`] holds [`robots::PackedClass::MAX_ROBOTS`] = 10
/// slots); tests slice off a prefix for smaller robot counts.
fn pending_slots() -> impl Strategy<Value = Vec<Option<Dir>>> {
    proptest::collection::vec(0usize..7, SLOTS).prop_map(|codes| {
        codes.into_iter().map(|c| (c != 0).then(|| Dir::from_index(c - 1))).collect()
    })
}

/// Strategy: a permutation of `0..SLOTS` (a shuffled identity via
/// selection-by-index).
fn permutation() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..64, SLOTS).prop_map(|picks| {
        let mut pool: Vec<usize> = (0..SLOTS).collect();
        picks.into_iter().map(|p| pool.remove(p % pool.len())).collect()
    })
}

proptest! {
    #[test]
    fn pack_get_roundtrips_every_slot(slots in pending_slots()) {
        let packed = PackedPending::of_slots(&slots);
        for (i, &p) in slots.iter().enumerate() {
            prop_assert_eq!(packed.get(i), p, "slot {}", i);
        }
        prop_assert_eq!(packed.is_idle(), slots.iter().all(Option::is_none));
    }

    #[test]
    fn key_equality_is_pending_vector_equality(
        a in pending_slots(),
        b in pending_slots(),
    ) {
        prop_assert_eq!(
            PackedPending::of_slots(&a) == PackedPending::of_slots(&b),
            a == b,
            "packed keys must induce exactly the pending-vector partition"
        );
    }

    #[test]
    fn with_edits_exactly_one_slot(
        slots in pending_slots(),
        slot in 0usize..SLOTS,
        code in 0usize..7,
    ) {
        let replacement = (code != 0).then(|| Dir::from_index(code - 1));
        let edited = PackedPending::of_slots(&slots).with(slot, replacement);
        for (i, &kept) in slots.iter().enumerate() {
            let expect = if i == slot { replacement } else { kept };
            prop_assert_eq!(edited.get(i), expect, "slot {}", i);
        }
    }

    #[test]
    fn permute_agrees_with_the_unpacked_vector(
        slots in pending_slots(),
        perm in permutation(),
    ) {
        let packed = PackedPending::of_slots(&slots).permute(SLOTS, |i| perm[i]);
        let mut unpacked = vec![None; SLOTS];
        for (i, &p) in slots.iter().enumerate() {
            unpacked[perm[i]] = p;
        }
        prop_assert_eq!(packed, PackedPending::of_slots(&unpacked));
    }

    #[test]
    fn permute_map_transforms_slots_and_directions(
        slots in pending_slots(),
        perm in permutation(),
        rot in 0usize..6,
    ) {
        // The point-symmetry action on a pending vector: slots move
        // by the induced permutation AND the captured directions
        // transform — the path `Semantics::permute_aux` rides.
        let packed =
            PackedPending::of_slots(&slots).permute_map(SLOTS, |i| perm[i], |d| d.rotate_ccw(rot));
        for (i, &p) in slots.iter().enumerate() {
            prop_assert_eq!(packed.get(perm[i]), p.map(|d| d.rotate_ccw(rot)), "slot {}", i);
        }
    }

    #[test]
    fn bits_are_injective(a in pending_slots(), b in pending_slots()) {
        let (pa, pb) = (PackedPending::of_slots(&a), PackedPending::of_slots(&b));
        prop_assert_eq!(pa.bits() == pb.bits(), a == b);
    }
}

/// Exhaustive pin on a 4-slot window: all 7^4 pending vectors map to
/// distinct keys, every one of which roundtrips.
#[test]
fn all_four_slot_pending_vectors_have_distinct_keys() {
    let mut seen = std::collections::HashSet::new();
    for code in 0..7u32.pow(4) {
        let slots: Vec<Option<Dir>> = (0..4)
            .map(|i| {
                let c = (code / 7u32.pow(i)) % 7;
                (c != 0).then(|| Dir::from_index(c as usize - 1))
            })
            .collect();
        let packed = PackedPending::of_slots(&slots);
        for (i, &p) in slots.iter().enumerate() {
            assert_eq!(packed.get(i), p);
        }
        assert!(seen.insert(packed.bits()), "distinct vectors must pack distinctly: {slots:?}");
    }
    assert_eq!(seen.len(), 2401);
}
