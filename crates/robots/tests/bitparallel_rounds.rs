//! Property tests of the bit-parallel round table against the scalar
//! engine, across the whole parameterized robot range n ∈ 2..=10.
//!
//! The packed-state explorer answers every per-activation collision
//! and connectivity question through [`engine::RoundTable`] word ops
//! (the scalar engine is only consulted to materialize refutation
//! reports), so the table's agreement with `engine::check_moves` and
//! `Configuration::is_connected` is load-bearing for every verdict
//! and digest the sweeps pin. The explorer cross-checks this per
//! action in debug builds; these tests pin the same contract over
//! random configurations and random move assignments, exhaustively
//! over all activation subsets of each instance.

use proptest::prelude::*;
use robots::{engine, Configuration};
use trigrid::Dir;

/// A connected configuration of `choices.len() + 1` robots grown from
/// the origin (deterministic given the choice list).
fn connected_config(choices: &[(usize, usize)]) -> Configuration {
    let mut cells = vec![trigrid::ORIGIN];
    for &(anchor_raw, dir_raw) in choices {
        for probe in 0..cells.len() {
            let anchor = cells[(anchor_raw + probe) % cells.len()];
            let mut done = false;
            for k in 0..6 {
                let cand = anchor.step(Dir::from_index(dir_raw + k));
                if !cells.contains(&cand) {
                    cells.push(cand);
                    done = true;
                    break;
                }
            }
            if done {
                break;
            }
        }
    }
    Configuration::new(cells)
}

/// Strategy: an instance of n ∈ 2..=10 robots with a random per-slot
/// move assignment (0 = stay, 1..=6 = the six grid directions).
fn instance() -> impl Strategy<Value = (Configuration, Vec<Option<Dir>>)> {
    (
        2usize..11,
        proptest::collection::vec((0usize..64, 0usize..6), 9),
        proptest::collection::vec(0usize..7, 10),
    )
        .prop_map(|(n, choices, codes)| {
            let cfg = connected_config(&choices[..n - 1]);
            let moves: Vec<Option<Dir>> =
                codes[..n].iter().map(|&c| (c != 0).then(|| Dir::from_index(c - 1))).collect();
            (cfg, moves)
        })
}

/// All activation subsets of the mover mask, ascending.
fn submasks(movers: u16) -> impl Iterator<Item = u16> {
    (0..=movers).filter(move |m| m & !movers == 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn table_collision_matches_scalar_check_moves((cfg, moves) in instance()) {
        let n = cfg.len();
        let table = engine::RoundTable::new(&cfg, &moves);
        for act in submasks(table.movers()) {
            let masked: Vec<Option<Dir>> = (0..n)
                .map(|i| if act & (1 << i) != 0 { moves[i] } else { None })
                .collect();
            let scalar = engine::check_moves(&cfg, &masked);
            prop_assert_eq!(
                table.collides(act),
                scalar.is_err(),
                "n={} act={:#b}: collision answers diverged",
                n,
                act
            );
        }
    }

    #[test]
    fn table_connectivity_matches_materialized_successor((cfg, moves) in instance()) {
        let n = cfg.len();
        let table = engine::RoundTable::new(&cfg, &moves);
        for act in submasks(table.movers()) {
            if table.collides(act) {
                continue; // connectivity is only defined on legal rounds
            }
            let masked: Vec<Option<Dir>> = (0..n)
                .map(|i| if act & (1 << i) != 0 { moves[i] } else { None })
                .collect();
            prop_assert!(engine::check_moves(&cfg, &masked).is_ok());
            let next = Configuration::new(
                cfg.positions()
                    .iter()
                    .zip(&masked)
                    .map(|(&p, m)| m.map_or(p, |d| p.step(d))),
            );
            prop_assert_eq!(
                table.connected(table.occupancy(act)),
                next.is_connected(),
                "n={} act={:#b}: connectivity answers diverged",
                n,
                act
            );
        }
    }

    #[test]
    fn gray_code_occupancy_matches_direct((cfg, moves) in instance()) {
        // The engine walks activation subsets in ascending order,
        // updating occupancy by XOR deltas of the changed slots (the
        // Gray-code view of the enumeration). The incremental word
        // must equal the directly computed one at every subset.
        let table = engine::RoundTable::new(&cfg, &moves);
        let movers = table.movers();
        let mut occ = table.base_occupancy();
        let mut prev: u16 = 0;
        for act in submasks(movers) {
            let mut changed = prev ^ act;
            while changed != 0 {
                let slot = changed.trailing_zeros() as usize;
                changed &= changed - 1;
                occ ^= table.delta(slot);
            }
            prev = act;
            prop_assert_eq!(occ, table.occupancy(act), "act={:#b}: incremental occupancy drifted", act);
        }
    }
}
