//! Experiment E9: what happens outside FSYNC? (The paper proves
//! Theorem 2 for the fully synchronous model only and leaves weaker
//! synchrony as future work, §V.)
//!
//! Runs the verified algorithm under a sequential (round-robin) and a
//! randomised activation scheduler over all 3652 classes and reports the
//! outcome mix — an empirical answer to the open question.
//!
//! ```text
//! cargo run --release --example schedulers
//! ```

use gathering::SevenGather;
use robots::sched::{run_scheduled, RandomSubset, RoundRobin, Scheduler};
use robots::{Configuration, Limits, Outcome};
use std::collections::BTreeMap;

fn sweep<S: Scheduler, F: Fn() -> S + Sync>(name: &str, make: F) {
    let algo = SevenGather::verified();
    let classes = polyhex::enumerate_fixed(7);
    let limits = Limits { max_rounds: 4000, detect_livelock: false };

    let outcomes = parallel::par_map(&classes, 0, |cells| {
        let initial = Configuration::new(cells.iter().copied());
        let mut sched = make();
        let ex = run_scheduled(&initial, &algo, &mut sched, limits);
        match ex.outcome {
            Outcome::Gathered { .. } => "gathered",
            Outcome::StuckFixpoint { .. } => "stuck",
            Outcome::Collision { .. } => "collision",
            Outcome::Disconnected { .. } => "disconnected",
            Outcome::Livelock { .. } => "livelock",
            Outcome::StepLimit { .. } => "step-limit",
            Outcome::Undecided { .. } => unreachable!("executions never return Undecided"),
        }
    });
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for o in outcomes {
        *counts.entry(o).or_default() += 1;
    }
    println!("{name}: {counts:?}");
}

fn main() {
    println!("verified rules under non-FSYNC schedulers, all 3652 classes:\n");
    sweep("round-robin (fully sequential)", || RoundRobin);
    sweep("random subsets p=0.5 (seed 1)", || RandomSubset::new(1, 0.5));
    sweep("random subsets p=0.9 (seed 2)", || RandomSubset::new(2, 0.9));
    println!(
        "\nThe paper claims Theorem 2 for FSYNC only (weaker synchrony is §V future\n\
         work); empirically the completed rule set gathers under these *sampled*\n\
         schedulers. The exhaustive adversary checker shows sampling is misleading:\n\
         `sweep --algo verified --sched adversary` certifies 1869 classes but\n\
         refutes 1783 with fair non-gathering schedules (see DESIGN.md §7)."
    );
}
