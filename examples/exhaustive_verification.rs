//! Experiment E1/E2: the paper's §IV-B evaluation.
//!
//! Runs a rule set from **every** connected seven-robot initial
//! configuration (all 3652 translation classes) and reports how many
//! gather. The paper's claim (Theorem 2): all of them.
//!
//! ```text
//! cargo run --release --example exhaustive_verification [-- verified|paper|baseline]
//! ```

use gathering::baseline::GreedyEast;
use gathering::SevenGather;
use robots::Limits;
use simlab::{stats, verify_all};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "verified".into());
    let limits = Limits::default();

    let report = match which.as_str() {
        "paper" => verify_all(7, &SevenGather::paper(), limits, 0),
        "baseline" => verify_all(7, &GreedyEast, limits, 0),
        _ => verify_all(7, &SevenGather::verified(), limits, 0),
    };

    println!("{}", report.summary());
    if report.all_gathered() {
        println!("paper's Theorem 2 claim reproduced: all {} classes gather ✓", report.total);
    } else {
        println!(
            "{} classes do not gather (expected for the incomplete printed rules / baseline)",
            report.failures.len()
        );
    }
    if let Some(s) = stats::rounds_stats(&report) {
        println!(
            "\nrounds to gather: min={} median={} p95={} max={} mean={:.2}",
            s.min, s.median, s.p95, s.max, s.mean
        );
        println!("\n{}", stats::ascii_histogram(&report, 16));
    }
}
