//! Experiment E3/E4: Theorem 1 — visibility range 1 is not enough.
//!
//! By default replays the paper's §III proof witnesses mechanically
//! (fast); with `--full` runs the complete machine proof (exhaustive
//! CEGIS search over every visibility-1 rule table — minutes to hours).
//!
//! ```text
//! cargo run --release --example impossibility_search [-- --full]
//! ```

use impossibility::replay;

fn main() {
    let full = std::env::args().any(|a| a == "--full");

    println!("== mechanical replay of the paper's §III witnesses ==\n");

    let base = replay::base_hypothesis();
    println!("base hypothesis (w.l.o.g.): a robot seeing only SE moves SW\n");
    for (name, claim) in replay::proposition1_claims() {
        match replay::collision_witness(base, claim, 7) {
            Some(w) => {
                println!("Proposition 1 {name}: collision witness found ✓");
                print!("{}", simlab::render::render(&w));
            }
            None => println!("Proposition 1 {name}: NO witness — check the claim!"),
        }
    }

    for (fig, rules) in [
        ("Fig. 12 (Case 2-1)", replay::case_2_1_rules()),
        ("Fig. 13 (Case 2-2)", replay::case_2_2_rules()),
    ] {
        match replay::livelock_witness(&rules) {
            Some((cfg, period)) => {
                println!("{fig}: livelock with period {period} from:");
                print!("{}", simlab::render::render(&cfg));
            }
            None => println!("{fig}: no livelock found — check the rules!"),
        }
    }

    if full {
        println!("\n== full machine proof (exhaustive search) ==");
        let cert = impossibility::prove_impossibility(u64::MAX, true);
        println!(
            "THEOREM 1 VERIFIED: UNSAT with a core of {} classes ({} DFS nodes, {} simulations)",
            cert.core_classes.len(),
            cert.stats.nodes,
            cert.stats.simulations
        );
    } else {
        println!("\n(run with --full for the complete exhaustive impossibility proof)");
    }
}
