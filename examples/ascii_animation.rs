//! Renders a gathering execution frame by frame (paper Fig. 54 style)
//! for a handful of characteristic initial shapes.
//!
//! ```text
//! cargo run --release --example ascii_animation [-- line|zigzag|lshape|random]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use trigather::prelude::*;

fn shape(name: &str) -> Configuration {
    match name {
        "zigzag" => Configuration::new(
            [(0, 0), (1, 1), (2, 0), (3, 1), (4, 0), (5, 1), (6, 0)].map(|(x, y)| Coord::new(x, y)),
        ),
        "lshape" => Configuration::new(
            [(0, 0), (2, 0), (4, 0), (6, 0), (8, 0), (7, 1), (6, 2)].map(|(x, y)| Coord::new(x, y)),
        ),
        "random" => {
            let mut rng = StdRng::seed_from_u64(2021);
            Configuration::new(trigather::polyhex::random_connected(7, &mut rng))
        }
        _ => Configuration::new((0..7).map(|i| Coord::new(2 * i, 0))),
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "zigzag".into());
    let initial = shape(&which);
    let algo = SevenGather::verified();
    let ex = trigather::robots::engine::run_traced(&initial, &algo, Limits::default());

    for (round, cfg) in ex.trace.as_ref().unwrap().iter().enumerate() {
        println!("round {round}  (diameter {}):", cfg.diameter());
        print!("{}", trigather::simlab::render::render(cfg));
        println!();
    }
    println!("outcome: {:?}", ex.outcome);
}
