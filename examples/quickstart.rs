//! Quickstart: watch seven robots gather (paper Fig. 54 style).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use trigather::prelude::*;

fn main() {
    // Seven robots in a west-east line — the classic hard case: every
    // robot sees at most two neighbours and must still agree, through
    // positions alone, where the hexagon forms.
    let initial = Configuration::new((0..7).map(|i| Coord::new(2 * i, 0)));
    let algo = SevenGather::verified();

    let ex = trigather::robots::engine::run_traced(&initial, &algo, Limits::default());
    let trace = ex.trace.as_ref().expect("traced run");

    println!("algorithm: {}", trigather::robots::Algorithm::name(&algo));
    println!("initial configuration ({} robots):\n", initial.len());
    for (round, cfg) in trace.iter().enumerate() {
        println!("--- round {round} ---");
        print!("{}", trigather::simlab::render::render(cfg));
    }
    match ex.outcome {
        Outcome::Gathered { rounds } => {
            println!("gathered in {rounds} rounds ✓");
            println!(
                "centre of the hexagon: {}",
                ex.final_config.gathered_center().expect("gathered")
            );
        }
        other => println!("did not gather: {other:?}"),
    }
}
