//! Experiment E8: convergence-speed statistics (an extension — the
//! paper reports only the boolean all-3652 verdict).
//!
//! ```text
//! cargo run --release --example step_statistics [-- out.json]
//! ```

use gathering::SevenGather;
use robots::Limits;
use simlab::{export, stats, verify_all};

fn main() {
    let report = verify_all(7, &SevenGather::verified(), Limits::default(), 0);
    println!("{}", report.summary());

    let s = stats::rounds_stats(&report).expect("all classes gather");
    println!(
        "rounds to gather over {} classes: min={} median={} p95={} max={} mean={:.2}\n",
        s.count, s.min, s.median, s.p95, s.max, s.mean
    );
    println!("{}", stats::ascii_histogram(&report, 25));
    println!("histogram CSV:\n{}", export::histogram_to_csv(&report));

    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, export::report_to_json(&report)).expect("write report");
        println!("full JSON report written to {path}");
    }
}
