//! Offline stand-in for the `crossbeam` crate: just the
//! [`deque`] Worker/Stealer/Steal API used by the work-stealing
//! executor, implemented over a mutex-protected `VecDeque`. Semantics
//! (LIFO owner pops, batch steals move about half the victim's items)
//! match the real crate; the lock-free performance of course does not,
//! which is acceptable for the coarse-grained simulation workloads here.

pub mod deque {
    //! Work-stealing double-ended queues.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    fn locked<T>(q: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        q.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The result of a steal attempt.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The victim queue was empty.
        Empty,
        /// Items were stolen.
        Success(T),
        /// The operation should be retried.
        Retry,
    }

    /// A queue owned by a single worker thread (LIFO flavour).
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    /// A handle that can steal batches from a [`Worker`]'s queue.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a LIFO worker queue.
        #[must_use]
        pub fn new_lifo() -> Self {
            Worker { queue: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// Pushes an item onto the owner's end.
        pub fn push(&self, item: T) {
            locked(&self.queue).push_back(item);
        }

        /// Pops from the owner's end (LIFO).
        pub fn pop(&self) -> Option<T> {
            locked(&self.queue).pop_back()
        }

        /// Creates a stealer handle for this queue.
        #[must_use]
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { queue: Arc::clone(&self.queue) }
        }
    }

    impl<T> Stealer<T> {
        /// Steals up to half of the victim's items into `dest`.
        pub fn steal_batch(&self, dest: &Worker<T>) -> Steal<()> {
            let batch: Vec<T> = {
                let mut victim = locked(&self.queue);
                if victim.is_empty() {
                    return Steal::Empty;
                }
                let take = victim.len().div_ceil(2);
                victim.drain(..take).collect()
            };
            let mut dest_q = locked(&dest.queue);
            for item in batch {
                dest_q.push_back(item);
            }
            Steal::Success(())
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { queue: Arc::clone(&self.queue) }
        }
    }
}
