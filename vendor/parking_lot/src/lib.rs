//! Offline stand-in for `parking_lot`: a [`Mutex`] with the
//! no-poisoning, guard-returning `lock()` API, implemented over
//! `std::sync::Mutex` (a poisoned lock just hands back the inner data,
//! matching parking_lot's indifference to panics).

use std::ops::{Deref, DerefMut};

/// Mutual exclusion with `parking_lot`'s API shape.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    guard: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { guard: self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner) }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}
