//! Offline stand-in for the `rand` crate (0.9-flavoured API surface):
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random_bool`], [`Rng::random_range`], and
//! [`seq::IndexedRandom::choose`]. Deterministic per seed (SplitMix64 /
//! xorshift* core), which is all the workspace relies on.

/// Low-level entropy source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Uniform sample from a range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! The standard generator.

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 stream feeding an
    /// xorshift* scramble). Not cryptographic — a stand-in for the real
    /// `StdRng` with identical construction and trait surface.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    //! Sequence-related sampling helpers.

    use super::RngCore;

    /// Random element selection from slices.
    pub trait IndexedRandom {
        /// The element type.
        type Item;
        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (u128::from(rng.next_u64()) % self.len() as u128) as usize;
                Some(&self[i])
            }
        }
    }
}
