//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the shapes used in this workspace, without `syn`/`quote` (hand-rolled
//! token parsing, code generation via strings):
//!
//! * structs with named fields (including `#[serde(with = "module")]`
//!   field attributes);
//! * enums with unit variants (optionally with explicit discriminants),
//!   tuple variants, and struct variants.
//!
//! The generated JSON shapes match real serde's externally-tagged
//! defaults: structs become objects, unit variants become strings,
//! newtype variants become `{"Name": value}`, tuple variants
//! `{"Name": [..]}`, and struct variants `{"Name": {..}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

struct Field {
    name: String,
    /// Module path from `#[serde(with = "path")]`, if present.
    with: Option<String>,
    /// Whether the field carries `#[serde(default)]`: an absent (or
    /// null) value deserializes as `Default::default()`.
    default: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

/// Field-level `#[serde(...)]` arguments recognized by the shim.
#[derive(Default)]
struct SerdeArgs {
    with: Option<String>,
    default: bool,
}

/// Extracts the recognized arguments (`with = "path"`, `default`) from
/// a `#[serde(...)]` attribute group, if this bracket group is one.
fn serde_args_of(group: &proc_macro::Group) -> SerdeArgs {
    let mut out = SerdeArgs::default();
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if let [TokenTree::Ident(name), TokenTree::Group(args)] = tokens.as_slice() {
        if name.to_string() == "serde" {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            match inner.as_slice() {
                [TokenTree::Ident(key), TokenTree::Punct(eq), TokenTree::Literal(lit)]
                    if key.to_string() == "with" && eq.as_char() == '=' =>
                {
                    out.with = Some(lit.to_string().trim_matches('"').to_string());
                }
                [TokenTree::Ident(key)] if key.to_string() == "default" => {
                    out.default = true;
                }
                _ => {}
            }
        }
    }
    out
}

/// Skips `#[...]` attributes starting at `i`, returning the new index
/// and the merged `#[serde(...)]` arguments found.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, SerdeArgs) {
    let mut args = SerdeArgs::default();
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let found = serde_args_of(g);
                if found.with.is_some() {
                    args.with = found.with;
                }
                args.default |= found.default;
                i += 2;
            }
            _ => break,
        }
    }
    (i, args)
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, …) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde facade derive does not support generic types (on `{name}`)");
    }
    let group = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g),
            _ => None,
        })
        .unwrap_or_else(|| panic!("expected a braced body for `{name}`"));
    let body_tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_named_fields(&body_tokens)),
        "enum" => Body::Enum(parse_variants(&body_tokens)),
        other => panic!("cannot derive serde impls for `{other} {name}`"),
    };
    Item { name, body }
}

/// Parses `name: Type, …` (with optional per-field attributes and
/// visibility) from the tokens of a brace group.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, args) = skip_attrs(tokens, i);
        i = skip_vis(tokens, j);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, got {other}"),
        }
        // Consume the type: everything until a comma at angle-depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
        fields.push(Field { name, with: args.with, default: args.default });
    }
    fields
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, _) = skip_attrs(tokens, i);
        i = j;
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, got {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Struct(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut depth = 0i32;
                let mut count = if inner.is_empty() { 0 } else { 1 };
                for t in &inner {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
                        _ => {}
                    }
                }
                i += 1;
                VariantKind::Tuple(count)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn field_to_value(field: &Field) -> String {
    match &field.with {
        None => format!("serde::ser::Serialize::to_value(&self.{})", field.name),
        Some(path) => format!(
            "match {path}::serialize(&self.{}, serde::ser::ValueSerializer) {{ \
               Ok(v) => v, Err(e) => match e {{ }} }}",
            field.name
        ),
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(String::from(\"{}\"), {})", f.name, field_to_value(f)))
                .collect();
            format!("serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.kind {
                    VariantKind::Unit => format!(
                        "{name}::{v} => serde::Value::Str(String::from(\"{v}\")),",
                        v = v.name
                    ),
                    VariantKind::Tuple(1) => format!(
                        "{name}::{v}(f0) => serde::Value::Map(vec![(String::from(\"{v}\"), \
                         serde::ser::Serialize::to_value(f0))]),",
                        v = v.name
                    ),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("serde::ser::Serialize::to_value(f{k})"))
                            .collect();
                        format!(
                            "{name}::{v}({b}) => serde::Value::Map(vec![(String::from(\"{v}\"), \
                             serde::Value::Seq(vec![{i}]))]),",
                            v = v.name,
                            b = binds.join(", "),
                            i = items.join(", ")
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{n}\"), serde::ser::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {b} }} => serde::Value::Map(vec![(String::from(\"{v}\"), \
                             serde::Value::Map(vec![{e}]))]),",
                            v = v.name,
                            b = binds.join(", "),
                            e = entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl serde::ser::Serialize for {name} {{\n\
           fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn field_from_value(field: &Field, source: &str) -> String {
    let from = match &field.with {
        None => format!("serde::de::Deserialize::from_value({source})?"),
        Some(path) => {
            format!("{path}::deserialize(serde::de::ValueDeserializer(({source}).clone()))?")
        }
    };
    if field.default {
        // `#[serde(default)]`: a field absent from the input map (which
        // the lookup surfaces as `Null`) falls back to `Default`.
        format!(
            "if matches!({source}, serde::Value::Null) {{ Default::default() }} else {{ {from} }}"
        )
    } else {
        from
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let lookup =
                        format!("value.get(\"{n}\").unwrap_or(&serde::Value::Null)", n = f.name);
                    format!(
                        "{n}: {{ let v = {lookup}; {} }},",
                        field_from_value(f, "v"),
                        n = f.name
                    )
                })
                .collect();
            format!(
                "if value.as_map().is_none() {{ \
                   return Err(serde::de::DeError(format!(\"expected map for struct {name}, got {{value:?}}\"))); \
                 }}\n\
                 Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),", v = v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match &v.kind {
                    VariantKind::Unit => None,
                    VariantKind::Tuple(1) => Some(format!(
                        "\"{v}\" => Ok({name}::{v}(serde::de::Deserialize::from_value(inner)?)),",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("serde::de::Deserialize::from_value(&seq[{k}])?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ \
                               let seq = inner.as_seq().ok_or_else(|| serde::de::DeError(\
                                   String::from(\"expected sequence for variant {v}\")))?; \
                               if seq.len() != {n} {{ return Err(serde::de::DeError(\
                                   String::from(\"wrong arity for variant {v}\"))); }} \
                               Ok({name}::{v}({i})) }}",
                            v = v.name,
                            i = items.join(", ")
                        ))
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{n}: {{ let v = inner.get(\"{n}\").unwrap_or(&serde::Value::Null); {} }},",
                                    field_from_value(f, "v"),
                                    n = f.name
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ \
                               if inner.as_map().is_none() {{ return Err(serde::de::DeError(\
                                   String::from(\"expected map for variant {v}\"))); }} \
                               Ok({name}::{v} {{ {i} }}) }}",
                            v = v.name,
                            i = inits.join(" ")
                        ))
                    }
                })
                .collect();
            format!(
                "match value {{\n\
                   serde::Value::Str(s) => match s.as_str() {{\n\
                     {units}\n\
                     other => Err(serde::de::DeError(format!(\"unknown unit variant {{other}} for {name}\"))),\n\
                   }},\n\
                   serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                     let (tag, inner) = (&entries[0].0, &entries[0].1);\n\
                     let _ = inner;\n\
                     match tag.as_str() {{\n\
                       {tagged}\n\
                       other => Err(serde::de::DeError(format!(\"unknown variant {{other}} for {name}\"))),\n\
                     }}\n\
                   }},\n\
                   other => Err(serde::de::DeError(format!(\"invalid value for enum {name}: {{other:?}}\"))),\n\
                 }}",
                units = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "impl<'de> serde::de::Deserialize<'de> for {name} {{\n\
           fn from_value(value: &serde::Value) -> Result<Self, serde::de::DeError> {{ {body} }}\n\
         }}"
    )
}
