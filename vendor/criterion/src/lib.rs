//! Offline stand-in for `criterion`.
//!
//! Provides the structural API the bench suite compiles against
//! (`Criterion`, benchmark groups, `BenchmarkId`, `Bencher::iter`,
//! `black_box`, `criterion_group!`/`criterion_main!`). Measurement is a
//! simple mean-of-samples wall clock print — no statistics, baselines,
//! or HTML reports — enough to compare orders of magnitude offline.

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

/// Identifies a parameterised benchmark, e.g. `name/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then the measured samples.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        let total = start.elapsed();
        let mean = total / self.samples as u32;
        println!("    mean {mean:?} over {} samples", self.samples);
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    println!("bench {label}");
    let mut b = Bencher { samples };
    f(&mut b);
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.to_string(), 10, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { _criterion: self, samples: 10 }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.to_string(), self.samples, &mut f);
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let samples = self.samples;
        run_one(&id.to_string(), samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a bench group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
