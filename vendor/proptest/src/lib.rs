//! Offline stand-in for `proptest`.
//!
//! Supports the subset used by this workspace: the [`proptest!`] macro
//! (with an optional `#![proptest_config(..)]` header), range
//! strategies, tuple strategies, [`Strategy::prop_map`],
//! [`collection::vec`], and the `prop_assert!`/`prop_assert_eq!`
//! macros. Cases are sampled from a generator seeded deterministically
//! per test (by test path), so runs are reproducible; there is no
//! shrinking — a failing case reports its inputs via the assertion
//! message instead.

use std::fmt;

/// Deterministic SplitMix64 generator used for case sampling.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary byte string (test path).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name for a stable, well-spread seed.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator. Unlike real proptest there is no shrinking, so a
/// strategy is just a sampling function.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generates `Vec`s of exactly `len` elements of `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The imports property tests actually use.
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as Default>::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$attr:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let result: ::std::result::Result<(), $crate::TestCaseError> = {
                        let ($($pat,)+) = ( $( $crate::Strategy::sample(&($strat), &mut rng), )+ );
                        #[allow(clippy::redundant_closure_call)]
                        (|| { $body Ok(()) })()
                    };
                    if let Err(e) = result {
                        panic!("property `{}` failed at case {case}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}
