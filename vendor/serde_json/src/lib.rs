//! Offline stand-in for `serde_json`: JSON text ⇄ the facade
//! [`serde::Value`] data model. Output matches real `serde_json`'s
//! default formatting closely enough for fixtures and round-trips.

pub use serde::Value;

/// Error produced by JSON serialization or parsing.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serialises a value to compact JSON.
///
/// # Errors
/// Infallible for values produced by the facade; the `Result` mirrors
/// the real `serde_json` signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises a value to pretty-printed JSON (two-space indent).
///
/// # Errors
/// Infallible for values produced by the facade; the `Result` mirrors
/// the real `serde_json` signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
/// Returns an error describing the first syntax or shape mismatch.
pub fn from_str<'a, T: serde::Deserialize<'a>>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(|e| Error(e.0))
}

/// Converts any serialisable value into a data-model [`Value`].
///
/// # Errors
/// Infallible for values produced by the facade; the `Result` mirrors
/// the real `serde_json` signature.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|e| Error(e.to_string()))
        } else {
            text.parse::<i128>()
                .map(Value::int)
                .map_err(|e| Error(format!("invalid integer `{text}`: {e}")))
        }
    }
}
