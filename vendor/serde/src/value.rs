//! The self-describing data model shared by the serialization facade
//! and the JSON front end.

/// A JSON-shaped data-model value.
///
/// Non-negative integers always normalise to [`Value::UInt`] so that
/// serialising and re-parsing a document yields structurally equal
/// values regardless of the Rust integer type that produced them.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Strictly negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Non-integral numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Seq(Vec<Value>),
    /// Objects, with insertion order preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Builds an integer value with the non-negative-as-`UInt`
    /// normalisation.
    ///
    /// # Panics
    /// Panics if `i` exceeds the 64-bit ranges (cannot happen for values
    /// produced from primitive integer types).
    #[must_use]
    pub fn int(i: i128) -> Value {
        if i >= 0 {
            Value::UInt(u64::try_from(i).expect("non-negative integer fits u64"))
        } else {
            Value::Int(i64::try_from(i).expect("negative integer fits i64"))
        }
    }

    /// The value as a signed 128-bit integer, if it is integral.
    #[must_use]
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(i128::from(*i)),
            Value::UInt(u) => Some(i128::from(*u)),
            _ => None,
        }
    }

    /// The value as a float (integers convert losslessly enough).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a map (object).
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}
