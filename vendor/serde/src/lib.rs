//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the external dependencies are vendored as small shims
//! exposing exactly the API surface the workspace uses (see
//! `vendor/README.md`). This crate mirrors `serde`'s user-facing names —
//! the `Serialize`/`Deserialize` traits, the derive macros behind the
//! `derive` feature, and the `ser`/`de` modules — over a simplified
//! self-describing [`Value`] data model instead of serde's visitor
//! machinery. Swapping back to the real `serde` is a one-line change in
//! the workspace manifest.

mod value;

pub use value::Value;

pub mod ser {
    //! Serialization half of the facade.

    use crate::Value;

    /// A type that can be represented as a [`Value`].
    ///
    /// Mirrors `serde::Serialize`: the entry point used by generic code
    /// is [`Serialize::serialize`], which feeds a [`Serializer`].
    pub trait Serialize {
        /// Converts `self` into the data-model [`Value`].
        fn to_value(&self) -> Value;

        /// Serializes `self` into the given serializer.
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_value(self.to_value())
        }
    }

    /// A sink for [`Value`]s. Mirrors `serde::Serializer` (collapsed to
    /// a single method thanks to the self-describing data model).
    pub trait Serializer: Sized {
        /// Successful output of this serializer.
        type Ok;
        /// Error type of this serializer.
        type Error: std::fmt::Display + std::fmt::Debug;
        /// Consumes a data-model value.
        fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
    }

    /// The identity serializer: returns the [`Value`] itself.
    pub struct ValueSerializer;

    impl Serializer for ValueSerializer {
        type Ok = Value;
        type Error = std::convert::Infallible;
        fn serialize_value(self, value: Value) -> Result<Value, Self::Error> {
            Ok(value)
        }
    }

    impl Serialize for bool {
        fn to_value(&self) -> Value {
            Value::Bool(*self)
        }
    }

    impl Serialize for f64 {
        fn to_value(&self) -> Value {
            Value::Float(*self)
        }
    }

    impl Serialize for f32 {
        fn to_value(&self) -> Value {
            Value::Float(f64::from(*self))
        }
    }

    impl Serialize for String {
        fn to_value(&self) -> Value {
            Value::Str(self.clone())
        }
    }

    impl Serialize for str {
        fn to_value(&self) -> Value {
            Value::Str(self.to_string())
        }
    }

    macro_rules! int_serialize {
        ($($t:ty),*) => {$(
            impl Serialize for $t {
                fn to_value(&self) -> Value {
                    // `as` is lossless here: every primitive integer fits i128.
                    Value::int(*self as i128)
                }
            }
        )*};
    }
    int_serialize!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Serialize> Serialize for Vec<T> {
        fn to_value(&self) -> Value {
            Value::Seq(self.iter().map(Serialize::to_value).collect())
        }
    }

    impl<T: Serialize> Serialize for [T] {
        fn to_value(&self) -> Value {
            Value::Seq(self.iter().map(Serialize::to_value).collect())
        }
    }

    impl<T: Serialize, const N: usize> Serialize for [T; N] {
        fn to_value(&self) -> Value {
            Value::Seq(self.iter().map(Serialize::to_value).collect())
        }
    }

    impl<T: Serialize> Serialize for Option<T> {
        fn to_value(&self) -> Value {
            match self {
                None => Value::Null,
                Some(v) => v.to_value(),
            }
        }
    }

    impl<T: Serialize + ?Sized> Serialize for &T {
        fn to_value(&self) -> Value {
            (**self).to_value()
        }
    }

    impl Serialize for Value {
        fn to_value(&self) -> Value {
            self.clone()
        }
    }
}

pub mod de {
    //! Deserialization half of the facade.

    use crate::Value;

    /// Error trait mirroring `serde::de::Error`.
    pub trait Error: Sized + std::fmt::Display + std::fmt::Debug {
        /// Builds an error from an arbitrary message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    /// The concrete error produced by [`Deserialize::from_value`].
    #[derive(Debug, Clone)]
    pub struct DeError(pub String);

    impl std::fmt::Display for DeError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for DeError {}

    impl Error for DeError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            DeError(msg.to_string())
        }
    }

    /// A source of [`Value`]s. Mirrors `serde::Deserializer`.
    pub trait Deserializer<'de>: Sized {
        /// Error type of this deserializer.
        type Error: Error;
        /// Produces the data-model value to decode from.
        fn take_value(self) -> Result<Value, Self::Error>;
    }

    /// The identity deserializer over an owned [`Value`].
    pub struct ValueDeserializer(pub Value);

    impl<'de> Deserializer<'de> for ValueDeserializer {
        type Error = DeError;
        fn take_value(self) -> Result<Value, DeError> {
            Ok(self.0)
        }
    }

    /// A type that can be reconstructed from a [`Value`].
    pub trait Deserialize<'de>: Sized {
        /// Decodes `Self` from a data-model value.
        fn from_value(value: &Value) -> Result<Self, DeError>;

        /// Decodes `Self` from the given deserializer.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            let value = deserializer.take_value()?;
            Self::from_value(&value).map_err(D::Error::custom)
        }
    }

    impl<'de> Deserialize<'de> for bool {
        fn from_value(value: &Value) -> Result<Self, DeError> {
            match value {
                Value::Bool(b) => Ok(*b),
                other => Err(DeError(format!("expected bool, got {other:?}"))),
            }
        }
    }

    impl<'de> Deserialize<'de> for f64 {
        fn from_value(value: &Value) -> Result<Self, DeError> {
            value.as_f64().ok_or_else(|| DeError(format!("expected number, got {value:?}")))
        }
    }

    impl<'de> Deserialize<'de> for f32 {
        fn from_value(value: &Value) -> Result<Self, DeError> {
            f64::from_value(value).map(|v| v as f32)
        }
    }

    impl<'de> Deserialize<'de> for String {
        fn from_value(value: &Value) -> Result<Self, DeError> {
            match value {
                Value::Str(s) => Ok(s.clone()),
                other => Err(DeError(format!("expected string, got {other:?}"))),
            }
        }
    }

    macro_rules! int_deserialize {
        ($($t:ty),*) => {$(
            impl<'de> Deserialize<'de> for $t {
                fn from_value(value: &Value) -> Result<Self, DeError> {
                    let i = value
                        .as_i128()
                        .ok_or_else(|| DeError(format!("expected integer, got {value:?}")))?;
                    <$t>::try_from(i)
                        .map_err(|_| DeError(format!("integer {i} out of range for {}", stringify!($t))))
                }
            }
        )*};
    }
    int_deserialize!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
        fn from_value(value: &Value) -> Result<Self, DeError> {
            match value {
                Value::Seq(items) => items.iter().map(T::from_value).collect(),
                other => Err(DeError(format!("expected sequence, got {other:?}"))),
            }
        }
    }

    impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
        fn from_value(value: &Value) -> Result<Self, DeError> {
            match value {
                Value::Null => Ok(None),
                other => T::from_value(other).map(Some),
            }
        }
    }

    impl<'de> Deserialize<'de> for Value {
        fn from_value(value: &Value) -> Result<Self, DeError> {
            Ok(value.clone())
        }
    }
}

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
