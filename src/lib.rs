//! # trigather — gathering seven autonomous mobile robots on triangular grids
//!
//! A full reproduction of *"Gathering of seven autonomous mobile robots
//! on triangular grids"* (Shibata, Ohyabu, Sudo, Nakamura, Kim,
//! Katayama; APDCM/IPDPSW 2021, arXiv:2103.08172), as a workspace of
//! focused crates re-exported here:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`trigrid`] | triangular-grid geometry in doubled coordinates |
//! | [`polyhex`] | enumeration of connected node sets (the 3652 initial classes) |
//! | [`parallel`] | small parallel executors for the exhaustive sweeps |
//! | [`robots`] | oblivious-robot Look-Compute-Move simulation core |
//! | [`gathering`] | **the paper's contribution**: the visibility-2 algorithm |
//! | [`impossibility`] | machine verification of Theorem 1 (visibility 1) |
//! | [`simlab`] | exhaustive verification, statistics, rendering, export |
//!
//! ## Quickstart
//!
//! ```
//! use trigather::prelude::*;
//!
//! // Seven robots in a row, the verified algorithm, FSYNC.
//! let line = Configuration::new((0..7).map(|i| Coord::new(2 * i, 0)));
//! let ex = trigather::robots::engine::run(&line, &SevenGather::verified(), Limits::default());
//! assert!(ex.outcome.is_gathered());
//! ```
//!
//! ## The paper's two results
//!
//! * **Theorem 2** (positive): with visibility range 2 the algorithm
//!   gathers from *every* connected initial configuration. Reproduce
//!   with `cargo run --release --example exhaustive_verification` —
//!   3652/3652 classes gather.
//! * **Theorem 1** (negative): with visibility range 1 no collision-free
//!   algorithm exists. Reproduce with
//!   `cargo run --release --example impossibility_search`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gathering;
pub use impossibility;
pub use parallel;
pub use polyhex;
pub use robots;
pub use simlab;
pub use trigrid;

/// The most common imports for working with the library.
pub mod prelude {
    pub use gathering::SevenGather;
    pub use robots::{Algorithm, Configuration, Execution, Limits, Outcome, View};
    pub use trigrid::{Coord, Dir, ORIGIN};
}
