//! Determinism pins for the within-class BFS frontier fan-out: one
//! class's search must produce the byte-identical report — verdict,
//! counterexample schedule, and every statistic — at any thread
//! count. `par_frontier: 1` forces even the smallest level through
//! [`robots::explore::Explorer`]'s parallel expansion path, so these
//! tests exercise the pure-enumeration + in-order-merge machinery
//! itself rather than relying on a frontier happening to grow past
//! the production threshold.

use gathering::SevenGather;
use robots::explore::{ExploreOptions, Explorer};
use robots::Configuration;

fn gathered_goal(cfg: &Configuration, _crashed: u16) -> bool {
    cfg.is_gathered()
}

/// Reports of `initial` under crash budget `budget` at the given
/// thread counts, with every BFS level fanned out.
fn reports_across_threads(
    initial: &Configuration,
    budget: u8,
    base: ExploreOptions,
) -> Vec<robots::explore::ExploreReport> {
    let algo = SevenGather::verified();
    [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            let opts = ExploreOptions { threads, par_frontier: 1, ..base };
            let explorer = Explorer::new_for_robots(&algo, opts, budget, gathered_goal, 8);
            explorer.check(initial)
        })
        .collect()
}

#[test]
fn adversary_search_is_thread_invariant_on_the_largest_n8_class() {
    // Class 2898 drives the deepest n = 8 SSYNC adversary search
    // (727 states) — big enough for multi-level fan-outs, small
    // enough for the debug tier.
    let classes = polyhex::enumerate_fixed(8);
    let initial = Configuration::new(classes[2898].iter().copied());
    let reports = reports_across_threads(&initial, 0, ExploreOptions::default());
    assert_eq!(reports[0], reports[1], "2 threads changed the adversary report");
    assert_eq!(reports[0], reports[2], "8 threads changed the adversary report");
    assert!(reports[0].states >= 500, "expected a deep search to exercise the fan-out");
}

#[test]
fn crash_search_is_thread_invariant_on_a_deep_n7_class() {
    // Class 1704 drives the deepest crash f = 1 search of the n = 7
    // space (252 states across the crash placements).
    let classes = polyhex::enumerate_fixed(7);
    let initial = Configuration::new(classes[1704].iter().copied());
    let reports = reports_across_threads(&initial, 1, ExploreOptions::crash());
    assert_eq!(reports[0], reports[1], "2 threads changed the crash report");
    assert_eq!(reports[0], reports[2], "8 threads changed the crash report");
}

#[test]
fn refutation_schedules_are_thread_invariant_across_a_class_sample() {
    // Every 97th n = 7 class under the budget-0 adversary: the
    // refuted ones must reproduce the exact same counterexample
    // schedule (the golden digests hash these) at every width.
    let classes = polyhex::enumerate_fixed(7);
    for index in (0..classes.len()).step_by(97) {
        let initial = Configuration::new(classes[index].iter().copied());
        let reports = reports_across_threads(&initial, 0, ExploreOptions::default());
        assert_eq!(reports[0], reports[1], "class {index}: 2 threads changed the report");
        assert_eq!(reports[0], reports[2], "class {index}: 8 threads changed the report");
    }
}
