//! Property-based integration tests (proptest): random connected
//! configurations and random schedules keep the core invariants.

use gathering::SevenGather;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use robots::sched::{run_scheduled, RandomSubset};
use robots::{engine, Configuration, Limits, Outcome};

fn random_class(seed: u64) -> Configuration {
    let mut rng = StdRng::seed_from_u64(seed);
    Configuration::new(polyhex::random_connected(7, &mut rng))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(debug_assertions) { 16 } else { 64 }))]

    #[test]
    fn random_connected_classes_gather_under_fsync(seed in 0u64..10_000) {
        let algo = SevenGather::verified();
        let initial = random_class(seed);
        let ex = engine::run(&initial, &algo, Limits::default());
        prop_assert!(ex.outcome.is_gathered(), "{:?} -> {:?}", initial, ex.outcome);
        prop_assert_eq!(ex.final_config.diameter(), 2);
    }

    #[test]
    fn random_translations_do_not_change_outcomes(seed in 0u64..10_000, dx in -20i32..20, dy in -20i32..20) {
        let delta = trigrid::Coord::new(if (dx + dy) % 2 == 0 { dx } else { dx + 1 }, dy);
        let algo = SevenGather::verified();
        let initial = random_class(seed);
        let a = engine::run(&initial, &algo, Limits::default());
        let b = engine::run(&initial.translate(delta), &algo, Limits::default());
        prop_assert_eq!(&a.outcome, &b.outcome);
        prop_assert_eq!(a.final_config.translate(delta), b.final_config);
    }

    #[test]
    fn random_schedulers_never_disconnect_silently(seed in 0u64..2_000) {
        // Under arbitrary random activation the algorithm loses its FSYNC
        // correctness claim, but the engine must always classify the run
        // into a definite outcome within the cap.
        let algo = SevenGather::verified();
        let initial = random_class(seed);
        let mut sched = RandomSubset::new(seed, 0.5);
        let limits = Limits { max_rounds: 500, detect_livelock: false };
        let ex = run_scheduled(&initial, &algo, &mut sched, limits);
        match ex.outcome {
            Outcome::Gathered { .. }
            | Outcome::StuckFixpoint { .. }
            | Outcome::Collision { .. }
            | Outcome::Disconnected { .. }
            | Outcome::StepLimit { .. }
            | Outcome::Livelock { .. } => {}
            Outcome::Undecided { .. } => {
                prop_assert!(false, "executions never return Undecided")
            }
        }
        // Robot count is conserved no matter what.
        prop_assert_eq!(ex.final_config.len(), 7);
    }

    #[test]
    fn enumerated_and_random_classes_share_canonical_space(seed in 0u64..10_000) {
        // Every random connected 7-set's canonical form appears in the
        // fixed enumeration (spot check of enumeration completeness).
        let cls = random_class(seed);
        let canon = cls.canonical();
        let mut found = false;
        polyhex::for_each_fixed(7, |cells| {
            if !found && cells == canon.positions() {
                found = true;
            }
        });
        prop_assert!(found, "{:?} missing from the enumeration", canon);
    }
}
