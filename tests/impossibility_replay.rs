//! Integration checks for the Theorem 1 machinery: the paper-witness
//! replay and small, bounded slices of the impossibility search.

use impossibility::replay::{self, Hypothesis};
use impossibility::sim::{config, simulate, FailKind, SimResult};
use impossibility::table::{encode, gathered_views, RuleTable, TableAlgorithm};
use trigrid::Dir;

#[test]
fn proposition1_has_collision_witnesses() {
    let base = replay::base_hypothesis();
    for (name, claim) in replay::proposition1_claims() {
        assert!(
            replay::collision_witness(base, claim, 7).is_some(),
            "Proposition 1 {name} must have a witness"
        );
    }
}

#[test]
fn corollary1_direction_constraints_have_witnesses() {
    // Corollary 1: a robot with one adjacent robot node E can move only
    // to NE or SE. Check that the two *other* non-trivial moves collide
    // with the symmetric partner (mirror of the same rule applied to the
    // W-neighbour robot): moving E (onto the neighbour that stays)…
    // the simplest mechanical rendering: E-only moving E collides with
    // the stay of its neighbour in a 2-robot configuration.
    let a = Hypothesis::new(&[Dir::E], Dir::E);
    // The neighbour (whose view contains W) stays; a collision of kind
    // (b) needs only the mover, which collision_witness models by
    // pairing with a rule that stays? Use simulate instead:
    let mut t = RuleTable::empty().complete_with_stay();
    t.assign(0b000001, encode(Some(Dir::E))); // E-only -> E
    let two_plus_line = config(&[(0, 0), (2, 0), (4, 0), (6, 0), (8, 0), (10, 0), (12, 0)]);
    assert_eq!(simulate(&two_plus_line, &t), SimResult::Fails(FailKind::Collision));
    let _ = a;
}

#[test]
fn livelock_witnesses_for_both_case2_subcases() {
    let (c1, p1) = replay::livelock_witness(&replay::case_2_1_rules()).expect("Fig. 12");
    let (c2, p2) = replay::livelock_witness(&replay::case_2_2_rules()).expect("Fig. 13");
    assert!(c1.is_connected() && c2.is_connected());
    assert!(p1 >= 1 && p2 >= 1);
}

#[test]
fn forced_stays_are_necessary_for_any_solver() {
    // Any table that moves a robot in a gathered-hexagon view cannot
    // satisfy Definition 1 on the hexagon class itself.
    for bits in gathered_views() {
        for dir in Dir::ALL {
            let mut t = RuleTable::empty().complete_with_stay();
            t.assign(bits, encode(Some(dir)));
            let algo = TableAlgorithm::new(&t);
            let h = robots::hexagon(trigrid::ORIGIN);
            let ex = robots::engine::run(&h, &algo, robots::Limits::default());
            assert!(
                !ex.outcome.is_gathered(),
                "moving view {bits:#08b} toward {dir:?} must break the hexagon fixpoint"
            );
        }
    }
}

#[test]
fn stay_only_algorithm_fails_definition1() {
    let t = RuleTable::empty().complete_with_stay();
    let line = config(&[(0, 0), (2, 0), (4, 0), (6, 0), (8, 0), (10, 0), (12, 0)]);
    assert_eq!(simulate(&line, &t), SimResult::Fails(FailKind::StuckFixpoint));
}

#[test]
fn simulate_agrees_with_engine_for_total_tables() {
    // The partial-table simulator and the generic engine must agree on
    // total tables, on a batch of classes.
    let mut t = RuleTable::empty().complete_with_stay();
    t.assign(0b000001, encode(Some(Dir::NE))); // E-only climbs NE
    let algo = TableAlgorithm::new(&t);
    let classes: Vec<_> = polyhex::enumerate_fixed(7).into_iter().step_by(97).collect();
    for cells in classes {
        let initial: robots::Configuration = cells.iter().copied().collect();
        let sim = simulate(&initial, &t);
        let ex = robots::engine::run(&initial, &algo, robots::Limits::default());
        let agree = matches!(
            (&sim, &ex.outcome),
            (SimResult::Gathers, robots::Outcome::Gathered { .. })
                | (SimResult::Fails(FailKind::Collision), robots::Outcome::Collision { .. })
                | (
                    SimResult::Fails(FailKind::StuckFixpoint),
                    robots::Outcome::StuckFixpoint { .. }
                )
                | (SimResult::Fails(FailKind::Livelock), robots::Outcome::Livelock { .. })
                | (SimResult::Fails(FailKind::Disconnected), robots::Outcome::Disconnected { .. })
        );
        assert!(agree, "sim {sim:?} vs engine {:?} on {initial:?}", ex.outcome);
    }
}
