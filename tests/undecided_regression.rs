//! Budget-honesty regression: every full n = 7 cell decides every
//! class. PR 7 closed the last undecided classes (Phase D's complete
//! product-automaton decision), so an `Undecided` verdict reappearing
//! in any full cell — a tripped budget, a product overflow, or the
//! symmetric stitching corner — is a regression, not noise. The
//! golden digests alone would catch it too, but opaquely; this test
//! names the class index and the reason.

use simlab::sweep::{merge_shards, run_shard, SchedSpec, SweepConfig};

/// The four full n = 7 cells: the paper's FSYNC table plus the three
/// model-checking semantics.
const CELLS: &[&str] = &["fsync", "adversary", "crash:1", "lcm-async"];

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full 3652-class n=7 cells are release-only; run cargo test --release"
)]
fn n7_full_cells_decide_every_class() {
    let classes = polyhex::enumerate_fixed(7);
    for spec in CELLS {
        let sched = SchedSpec::parse(spec).expect("known scheduler");
        let cfg = SweepConfig { n: 7, sched, shards: 1, ..SweepConfig::default() };
        cfg.validate().expect("supported cell");
        let record = run_shard(&classes, &cfg, 0, 0, classes.len());
        for result in &record.results {
            assert!(
                !matches!(result.outcome, robots::Outcome::Undecided { .. }),
                "{spec}: class {} is undecided ({:?})",
                result.index,
                result.outcome
            );
        }
        let summary = merge_shards(&cfg, std::slice::from_ref(&record)).expect("consistent shard");
        assert_eq!(summary.undecided, 0, "{spec}: summary reports undecided classes");
        if let Some(counts) = summary.adversary {
            assert_eq!(counts.undecided, 0, "{spec}: verdict tally reports undecided classes");
        }
    }
}
