//! The headline result (Theorem 2 / §IV-B): the verified algorithm
//! gathers from **every** connected seven-robot initial configuration.
//!
//! The full 3652-class sweep runs in release (`cargo test --release` or
//! the `exhaustive_verification` example); debug builds check a
//! deterministic sample so `cargo test --workspace` stays fast.

use gathering::SevenGather;
use robots::{Configuration, Limits, Outcome};

fn classes(step: usize) -> Vec<Configuration> {
    polyhex::enumerate_fixed(7).into_iter().step_by(step).map(Configuration::new).collect()
}

#[test]
fn sampled_classes_gather() {
    let algo = SevenGather::verified();
    let sample = classes(if cfg!(debug_assertions) { 37 } else { 1 });
    let failures: usize = parallel::par_map(&sample, 0, |cls| {
        let ex = robots::engine::run(cls, &algo, Limits::default());
        usize::from(!ex.outcome.is_gathered())
    })
    .into_iter()
    .sum();
    assert_eq!(failures, 0, "every sampled class must gather");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "full sweep is release-only; run cargo test --release")]
fn all_3652_classes_gather_without_any_failure() {
    let report = simlab::verify_all(7, &SevenGather::verified(), Limits::default(), 0);
    assert_eq!(report.total, 3652);
    assert!(report.all_gathered(), "Theorem 2: {}", report.summary());
}

#[test]
fn printed_rules_alone_do_not_solve_the_problem() {
    // The paper's own text admits omitting "several robot behaviors";
    // the verbatim pseudocode strands most classes. Check on a sample.
    let algo = SevenGather::paper();
    let sample = classes(37);
    let failures: usize = parallel::par_map(&sample, 0, |cls| {
        let ex = robots::engine::run(cls, &algo, Limits::default());
        usize::from(!ex.outcome.is_gathered())
    })
    .into_iter()
    .sum();
    assert!(failures > 0, "verbatim pseudocode should not pass (it omits behaviours)");
}

#[test]
fn gathered_configuration_is_terminal_and_stable() {
    let algo = SevenGather::verified();
    let h = robots::hexagon(trigrid::Coord::new(10, 4));
    let ex = robots::engine::run(&h, &algo, Limits::default());
    assert_eq!(ex.outcome, Outcome::Gathered { rounds: 0 });
    assert_eq!(ex.final_config, h);
}
