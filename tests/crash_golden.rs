//! Golden-file regression for the crash-fault (f = 1) model checker.
//!
//! * Debug tier: the verdicts (kind + schedule hash + crash count) of
//!   the fixed 65-class subset (every 57th class, the same subset the
//!   adversary golden pins) are pinned by
//!   `tests/golden/crash-verified-subset.json`, and every refuted
//!   verdict is replayed through the engine to its recorded outcome.
//! * Release tier: the full 3652-class f = 1 classification is
//!   re-derived and pinned — verdict tallies plus the FNV digest over
//!   every per-class verdict and schedule — by
//!   `tests/golden/crash-verified-full.json`, and **every** refuted
//!   class's schedule + crash assignment is replayed to a non-gathered
//!   outcome (the subsystem's acceptance criterion).
//!
//! Regenerate both fixtures after an intentional checker change with:
//!
//! ```sh
//! cargo test --release --test crash_golden -- --ignored regen
//! ```

use gathering::SevenGather;
use robots::faults::{self, CrashChecker, CrashOptions, CrashVerdict};
use robots::{Configuration, Outcome};
use simlab::sweep::{run_shard, verdict_digest, SchedSpec, ShardRecord, SweepConfig};

const SUBSET_GOLDEN: &str = include_str!("golden/crash-verified-subset.json");
const FULL_GOLDEN: &str = include_str!("golden/crash-verified-full.json");

/// The pinned subset: every 57th class of the enumeration (65 classes,
/// spread across the whole space — the adversary golden's subset).
fn subset_indices() -> Vec<usize> {
    (0..3652).step_by(57).collect()
}

fn check_subset() -> Vec<(usize, Configuration, faults::CrashReport)> {
    let classes = polyhex::enumerate_fixed(7);
    let algo = SevenGather::verified();
    let checker = CrashChecker::new(&algo, CrashOptions::default());
    subset_indices()
        .into_iter()
        .map(|index| {
            let initial = Configuration::new(classes[index].iter().copied());
            let report = checker.check(&initial);
            (index, initial, report)
        })
        .collect()
}

fn subset_fixture_entries(
    reports: &[(usize, Configuration, faults::CrashReport)],
) -> Vec<serde_json::Value> {
    reports
        .iter()
        .map(|(index, _, report)| {
            let (schedule_hash, crashes) = match &report.verdict {
                CrashVerdict::Refuted { schedule, .. } => (
                    format!("{:016x}", faults::schedule_hash(schedule)),
                    schedule.iter().map(|a| u64::from(a.crash.count_ones())).sum(),
                ),
                _ => (String::new(), 0),
            };
            serde_json::Value::Map(vec![
                ("index".to_string(), serde_json::Value::UInt(*index as u64)),
                ("verdict".to_string(), serde_json::Value::Str(report.verdict.kind().to_string())),
                ("schedule_hash".to_string(), serde_json::Value::Str(schedule_hash)),
                ("crashes".to_string(), serde_json::Value::UInt(crashes)),
            ])
        })
        .collect()
}

/// Asserts a refuted crash verdict replays through the engine to its
/// recorded outcome, with the crashed robots frozen for good.
fn assert_replays(
    index: usize,
    initial: &Configuration,
    algo: &SevenGather,
    verdict: &CrashVerdict,
) {
    let CrashVerdict::Refuted { outcome, schedule } = verdict else {
        return;
    };
    let budget: u32 = schedule.iter().map(|a| a.crash.count_ones()).sum();
    assert!(budget <= 1, "class {index}: f = 1 schedules crash at most one robot");
    let run = faults::replay(initial, algo, verdict).expect("refuted verdicts replay");
    assert_eq!(&run.execution.outcome, outcome, "class {index}: replay diverged");
    assert!(!run.execution.outcome.is_gathered(), "class {index}: a refutation cannot gather");
    // The crashed robots never move: each crash coordinate stays
    // occupied in every configuration after the injection.
    let trace = run.execution.trace.as_ref().expect("crash replays record traces");
    for &(at, coord) in &run.events {
        assert!(
            trace[at..].iter().all(|c| c.contains(coord)),
            "class {index}: crashed robot at {coord:?} moved"
        );
    }
    // For lassos, the final configuration must not already be a
    // successful terminal of the crash model.
    if matches!(outcome, Outcome::StepLimit { .. }) {
        assert!(
            !faults::is_goal_fixpoint(&run.execution.final_config, algo, &run.crashed),
            "class {index}: a lasso replay must not settle at a goal"
        );
    }
}

#[test]
fn crash_subset_matches_golden_file() {
    let reports = check_subset();
    let produced = subset_fixture_entries(&reports);
    let golden: serde_json::Value = serde_json::from_str(SUBSET_GOLDEN).expect("fixture parses");
    let golden = golden.as_seq().expect("fixture is an array");
    assert_eq!(golden.len(), produced.len(), "fixture covers the 65-class subset");
    for (expected, actual) in golden.iter().zip(&produced) {
        assert_eq!(expected, actual, "subset verdict diverged from the golden file");
    }
}

#[test]
fn crash_subset_refutations_replay_to_their_recorded_outcomes() {
    let algo = SevenGather::verified();
    let mut refuted = 0;
    for (index, initial, report) in check_subset() {
        if matches!(report.verdict, CrashVerdict::Refuted { .. }) {
            assert_replays(index, &initial, &algo, &report.verdict);
            refuted += 1;
        }
    }
    assert!(refuted > 0, "the pinned subset contains refuted classes");
}

#[test]
fn crash_checker_is_deterministic_on_the_subset() {
    let a = check_subset();
    let b = check_subset();
    for ((ia, _, ra), (ib, _, rb)) in a.iter().zip(&b) {
        assert_eq!(ia, ib);
        assert_eq!(ra, rb, "class {ia}: verdicts must be reproducible");
    }
}

fn full_classification() -> (ShardRecord, usize, usize, usize, String) {
    let sched = SchedSpec::parse("crash:1").expect("known scheduler");
    let cfg = SweepConfig { sched, shards: 1, ..SweepConfig::default() };
    let classes = polyhex::enumerate_fixed(7);
    let record = run_shard(&classes, &cfg, 0, 0, classes.len());
    let digest = format!("{:016x}", verdict_digest(std::slice::from_ref(&record)));
    let mut proof = 0;
    let mut refuted = 0;
    let mut undecided = 0;
    for res in &record.results {
        match res.crash.as_ref().expect("crash cells store verdicts") {
            CrashVerdict::Proof => proof += 1,
            CrashVerdict::Refuted { .. } => refuted += 1,
            CrashVerdict::Undecided { .. } => undecided += 1,
        }
    }
    (record, proof, refuted, undecided, digest)
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full 3652-class crash classification is release-only; run cargo test --release"
)]
fn crash_full_classification_matches_golden_file_and_replays() {
    let (record, proof, refuted, undecided, digest) = full_classification();
    let golden: serde_json::Value = serde_json::from_str(FULL_GOLDEN).expect("fixture parses");
    let expect = |key: &str| {
        golden.get(key).and_then(serde_json::Value::as_f64).unwrap_or_else(|| {
            panic!("fixture lacks numeric key {key:?}");
        }) as usize
    };
    assert_eq!(proof + refuted + undecided, 3652, "every class is classified");
    assert_eq!(proof, expect("proof"), "crash-proof count diverged");
    assert_eq!(refuted, expect("refuted"), "refuted count diverged");
    assert_eq!(undecided, expect("undecided"), "undecided count diverged");
    let expected_digest =
        golden.get("digest").and_then(serde_json::Value::as_str).expect("digest key");
    assert_eq!(digest, expected_digest, "per-class verdict digest diverged");

    // Acceptance criterion: every refuted class's schedule + crash
    // assignment replays through the engine to a non-gathered outcome.
    let algo = SevenGather::verified();
    let classes = polyhex::enumerate_fixed(7);
    for res in &record.results {
        let verdict = res.crash.as_ref().expect("crash cells store verdicts");
        if matches!(verdict, CrashVerdict::Refuted { .. }) {
            let initial = Configuration::new(classes[res.index].iter().copied());
            assert_replays(res.index, &initial, &algo, verdict);
        }
    }
}

/// Not a test: regenerates both fixtures. Run explicitly (release!)
/// after an intentional checker change.
#[test]
#[ignore = "fixture regeneration helper; run explicitly with --ignored"]
fn regen_crash_goldens() {
    let reports = check_subset();
    let entries = subset_fixture_entries(&reports);
    let subset =
        serde_json::to_string_pretty(&serde_json::Value::Seq(entries)).expect("fixture serialises");
    std::fs::write("tests/golden/crash-verified-subset.json", subset + "\n")
        .expect("write subset fixture");

    let (_, proof, refuted, undecided, digest) = full_classification();
    let full = serde_json::to_string_pretty(&serde_json::Value::Map(vec![
        ("total".to_string(), serde_json::Value::UInt(3652)),
        ("crashes".to_string(), serde_json::Value::UInt(1)),
        ("proof".to_string(), serde_json::Value::UInt(proof as u64)),
        ("refuted".to_string(), serde_json::Value::UInt(refuted as u64)),
        ("undecided".to_string(), serde_json::Value::UInt(undecided as u64)),
        ("digest".to_string(), serde_json::Value::Str(digest)),
    ]))
    .expect("fixture serialises");
    std::fs::write("tests/golden/crash-verified-full.json", full + "\n")
        .expect("write full fixture");

    // Keep replay validity in the regen path too.
    let algo = SevenGather::verified();
    for (index, initial, report) in &reports {
        assert_replays(*index, initial, &algo, &report.verdict);
    }
}
