//! Equivalence pin for the shared engine loop: `run_scheduled` under
//! the [`FullSync`] scheduler must agree **round for round** — trace,
//! outcome, and round count — with the FSYNC engine. This is the
//! regression harness around the refactor that made `run`,
//! `run_scheduled` and the adversary checker share one round-semantics
//! implementation (`engine::step_moves`).

use proptest::prelude::*;
use robots::sched::{run_scheduled, run_scheduled_traced, FullSync};
use robots::{engine, Algorithm, Configuration, Limits, View};
use trigather::prelude::SevenGather;
use trigrid::Dir;

/// Strategy: a connected configuration of `n` robots grown from the
/// origin (deterministic given the choice list).
fn connected_config(n: usize) -> impl Strategy<Value = Configuration> {
    proptest::collection::vec((0usize..64, 0usize..6), n - 1).prop_map(move |choices| {
        let mut cells = vec![trigrid::ORIGIN];
        for (anchor_raw, dir_raw) in choices {
            for probe in 0..cells.len() {
                let anchor = cells[(anchor_raw + probe) % cells.len()];
                let mut done = false;
                for k in 0..6 {
                    let cand = anchor.step(Dir::from_index(dir_raw + k));
                    if !cells.contains(&cand) {
                        cells.push(cand);
                        done = true;
                        break;
                    }
                }
                if done {
                    break;
                }
            }
        }
        Configuration::new(cells)
    })
}

/// A random total visibility-1 algorithm as a 64-entry table.
struct VecTable(Vec<u8>);

impl Algorithm for VecTable {
    fn radius(&self) -> u32 {
        1
    }
    fn compute(&self, view: &View) -> Option<Dir> {
        let code = self.0[view.bits() as usize];
        (code != 0).then(|| Dir::from_index((code - 1) as usize))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fullsync_schedule_equals_fsync_engine(
        cfg in connected_config(7),
        table in proptest::collection::vec(0u8..7, 64),
    ) {
        let algo = VecTable(table);
        // detect_livelock stays on: FullSync is round-independent and
        // deterministic, so class-repetition detection is sound and the
        // two runners must agree even on Livelock outcomes.
        let limits = Limits { max_rounds: 4000, detect_livelock: true };
        let a = engine::run_traced(&cfg, &algo, limits);
        let b = run_scheduled_traced(&cfg, &algo, &mut FullSync, limits);
        prop_assert_eq!(&a.outcome, &b.outcome);
        prop_assert_eq!(&a.final_config, &b.final_config);
        let (ta, tb) = (a.trace.expect("traced"), b.trace.expect("traced"));
        prop_assert_eq!(ta.len(), tb.len(), "round counts must agree");
        prop_assert_eq!(ta, tb, "traces must agree round for round");
    }
}

#[test]
fn fullsync_schedule_equals_fsync_engine_on_verified_rules() {
    // The paper's algorithm over a deterministic sample of the 3652
    // classes: outcome (including rounds-to-gather) must be identical
    // through both runners.
    let algo = SevenGather::verified();
    let classes = polyhex::enumerate_fixed(7);
    for index in (0..classes.len()).step_by(97) {
        let initial = Configuration::new(classes[index].iter().copied());
        let a = engine::run(&initial, &algo, Limits::default());
        let b = run_scheduled(&initial, &algo, &mut FullSync, Limits::default());
        assert_eq!(a.outcome, b.outcome, "class {index}");
        assert_eq!(a.final_config, b.final_config, "class {index}");
    }
}
