//! Equivalence regression for the `robots::explore` refactor.
//!
//! PR 2's SSYNC adversary checker was refactored onto the generic
//! crash-adversary transition system (`robots::explore`) with crash
//! budget 0. Its golden files (`tests/golden/adversary-*.json`,
//! checked by `tests/adversary_golden.rs`) pin that the refactor left
//! every verdict byte-identical; this file pins the *structural*
//! equivalences between the instantiations:
//!
//! * the crash checker with budget **0** must agree with the adversary
//!   checker verdict-for-verdict on seven-robot classes (at `n = 7`
//!   the relaxed gathering ball is exactly the paper's hexagon), with
//!   identical schedules, outcomes and exploration statistics;
//! * budget-0 schedules never contain a crash injection;
//! * a crash-proof class is necessarily adversary-proof — the crash
//!   adversary strictly contains the fault-free one.

use gathering::SevenGather;
use robots::adversary::{AdversaryOptions, AdversaryVerdict, Checker};
use robots::faults::{CrashChecker, CrashOptions, CrashVerdict};
use robots::Configuration;

/// Every 157th class: a 24-class sample that stays debug-friendly even
/// though it runs three exhaustive checkers per class.
fn sample() -> Vec<(usize, Configuration)> {
    let classes = polyhex::enumerate_fixed(7);
    (0..classes.len())
        .step_by(157)
        .map(|i| (i, Configuration::new(classes[i].iter().copied())))
        .collect()
}

#[test]
fn crash_budget_zero_matches_the_adversary_checker() {
    let algo = SevenGather::verified();
    let adversary = Checker::new(&algo, AdversaryOptions::default());
    let mut opts = CrashOptions::new(0, AdversaryOptions::default().fair_depth);
    // Identical budgets, so even Undecided-by-exhaustion agrees.
    opts.explore.max_states = AdversaryOptions::default().max_classes;
    opts.explore.max_edges = AdversaryOptions::default().max_edges;
    let crash = CrashChecker::new(&algo, opts);
    for (index, initial) in sample() {
        let a = adversary.check(&initial);
        let c = crash.check(&initial);
        assert_eq!(a.classes, c.states, "class {index}: explored state counts diverge");
        assert_eq!(a.edges, c.edges, "class {index}: expanded edge counts diverge");
        assert_eq!(a.deduped, c.deduped, "class {index}: dedup counts diverge");
        match (&a.verdict, &c.verdict) {
            (AdversaryVerdict::Proof, CrashVerdict::Proof) => {}
            (
                AdversaryVerdict::Undecided { depth: da, reason: ra },
                CrashVerdict::Undecided { depth: dc, reason: rc },
            ) => {
                assert_eq!(da, dc, "class {index}");
                assert_eq!(ra, rc, "class {index}: undecided reasons diverge");
            }
            (
                AdversaryVerdict::Refuted { schedule, outcome },
                CrashVerdict::Refuted { schedule: cs, outcome: co },
            ) => {
                assert_eq!(outcome, co, "class {index}: refutation outcomes diverge");
                assert!(cs.iter().all(|a| a.crash == 0), "class {index}: budget 0 injected");
                let activations: Vec<u16> = cs.iter().map(|a| a.activate).collect();
                assert_eq!(schedule, &activations, "class {index}: schedules diverge");
            }
            (a, c) => panic!("class {index}: verdicts diverge: {a:?} vs {c:?}"),
        }
    }
}

#[test]
fn crash_proof_implies_adversary_proof() {
    let algo = SevenGather::verified();
    let adversary = Checker::new(&algo, AdversaryOptions::default());
    let crash = CrashChecker::new(&algo, CrashOptions::default());
    for (index, initial) in sample() {
        let c = crash.check(&initial);
        if c.verdict == CrashVerdict::Proof {
            let a = adversary.check(&initial);
            assert_eq!(
                a.verdict,
                AdversaryVerdict::Proof,
                "class {index}: 1-crash-proof must imply adversary-proof"
            );
            // Both proofs exhaust their reachable graphs, and every
            // budget-0 action is still available to the crash
            // adversary: its state space contains the fault-free one.
            // (For refutations both searches stop at their first bad
            // terminal, so no such comparison holds.)
            assert!(
                c.states >= a.classes,
                "class {index}: the crash state space contains the fault-free one"
            );
        }
    }
    // The headline hexagon class gathers even with a crash: make the
    // implication test non-vacuous regardless of how the sample falls.
    let hexagon = robots::hexagon(trigrid::ORIGIN);
    assert_eq!(crash.check(&hexagon).verdict, CrashVerdict::Proof);
    assert_eq!(adversary.check(&hexagon).verdict, AdversaryVerdict::Proof);
}
