//! Golden-file regression for the parameterized (n ≠ 7) sweep cells —
//! the first classification tables beyond the paper's 3652-class
//! seven-robot experiment.
//!
//! * Debug tier: the full n ∈ {4, 5} FSYNC and crash f=1 cells (44 and
//!   186 classes — cheap even unoptimized) plus outcome-kind subset
//!   rows over every 257th n = 8 class and every 1201st n = 9 class.
//! * Release tier: the full 16689-class n = 8 and 77359-class n = 9
//!   cells — FSYNC, crash f=1, SSYNC adversary and lcm-async — with
//!   verdict tallies and the n-tagged FNV verdict digest pinned. No
//!   silent truncation: a budget-capped class would land in
//!   `undecided`/`step_limit`, and the pinned rows record those
//!   columns exactly.
//!
//! All rows live in `tests/golden/nsweep-verified.json`. Regenerate
//! after an intentional checker change with:
//!
//! ```sh
//! cargo test --release --test nsweep_golden -- --ignored regen
//! ```

use gathering::SevenGather;
use simlab::sweep::{merge_shards, run_class, run_shard, SchedSpec, SweepConfig};

const GOLDEN: &str = include_str!("golden/nsweep-verified.json");

/// The pinned full cells: (n, scheduler spec, release_only).
const ROWS: &[(usize, &str, bool)] = &[
    (4, "fsync", false),
    (5, "fsync", false),
    (8, "fsync", true),
    (4, "crash:1", false),
    (5, "crash:1", false),
    (8, "crash:1", true),
    (8, "adversary", true),
    (8, "lcm-async", true),
    (9, "fsync", true),
    (9, "crash:1", true),
    (9, "adversary", true),
    (9, "lcm-async", true),
];

/// The pinned debug subsets: every `stride`-th class of the n = 8
/// space (66 classes) and of the n = 9 space (65 classes), outcome
/// kinds only — the release rows pin the verdict digests.
const SUBSET_ROWS: &[(usize, &str, usize)] = &[
    (8, "fsync", 257),
    (8, "crash:1", 257),
    (8, "adversary", 257),
    (9, "fsync", 1201),
    (9, "crash:1", 1201),
    (9, "adversary", 1201),
];

/// Runs one full cell and renders its pinned row: verdict tallies and
/// digest for model-checking cells, the outcome breakdown for FSYNC.
fn full_row(n: usize, spec: &str) -> serde_json::Value {
    let sched = SchedSpec::parse(spec).expect("known scheduler");
    let cfg = SweepConfig { n, sched, shards: 1, ..SweepConfig::default() };
    cfg.validate().expect("supported cell");
    let classes = polyhex::enumerate_fixed(n);
    let record = run_shard(&classes, &cfg, 0, 0, classes.len());
    let summary = merge_shards(&cfg, std::slice::from_ref(&record)).expect("consistent shard");
    let mut entry = vec![
        ("n".to_string(), serde_json::Value::UInt(n as u64)),
        ("sched".to_string(), serde_json::Value::Str(sched.name())),
        ("total".to_string(), serde_json::Value::UInt(summary.total as u64)),
    ];
    match summary.adversary {
        Some(counts) => {
            entry.push(("proof".to_string(), serde_json::Value::UInt(counts.proof as u64)));
            entry.push(("refuted".to_string(), serde_json::Value::UInt(counts.refuted as u64)));
            entry.push(("undecided".to_string(), serde_json::Value::UInt(counts.undecided as u64)));
            let digest = summary.digest.expect("model-checking cells carry digests");
            entry.push(("digest".to_string(), serde_json::Value::Str(digest)));
        }
        None => {
            for (key, count) in [
                ("gathered", summary.gathered),
                ("stuck", summary.stuck),
                ("livelock", summary.livelock),
                ("collision", summary.collision),
                ("disconnected", summary.disconnected),
                ("step_limit", summary.step_limit),
                ("max_rounds", summary.max_rounds),
            ] {
                entry.push((key.to_string(), serde_json::Value::UInt(count as u64)));
            }
        }
    }
    serde_json::Value::Map(entry)
}

/// Runs every `stride`-th class of a cell and renders the subset row:
/// outcome-kind counts over the subset (crash proofs surface as
/// `gathered`, undecided classes as `step_limit` — the
/// `outcome_of_*_verdict` mapping).
fn subset_row(n: usize, spec: &str, stride: usize) -> serde_json::Value {
    let sched = SchedSpec::parse(spec).expect("known scheduler");
    let cfg = SweepConfig { n, sched, ..SweepConfig::default() };
    cfg.validate().expect("supported cell");
    let algo = SevenGather::verified();
    let limits = cfg.effective_limits();
    let classes = polyhex::enumerate_fixed(n);
    let (mut gathered, mut stuck, mut livelock, mut collision, mut disconnected, mut step_limit) =
        (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    let mut undecided = 0u64;
    let mut covered = 0u64;
    for index in (0..classes.len()).step_by(stride) {
        let initial = robots::Configuration::new(classes[index].iter().copied());
        match run_class(&initial, &algo, sched, index, limits) {
            robots::Outcome::Gathered { .. } => gathered += 1,
            robots::Outcome::StuckFixpoint { .. } => stuck += 1,
            robots::Outcome::Livelock { .. } => livelock += 1,
            robots::Outcome::Collision { .. } => collision += 1,
            robots::Outcome::Disconnected { .. } => disconnected += 1,
            robots::Outcome::StepLimit { .. } => step_limit += 1,
            robots::Outcome::Undecided { .. } => undecided += 1,
        }
        covered += 1;
    }
    serde_json::Value::Map(vec![
        ("n".to_string(), serde_json::Value::UInt(n as u64)),
        ("sched".to_string(), serde_json::Value::Str(sched.name())),
        ("stride".to_string(), serde_json::Value::UInt(stride as u64)),
        ("classes".to_string(), serde_json::Value::UInt(covered)),
        ("gathered".to_string(), serde_json::Value::UInt(gathered)),
        ("stuck".to_string(), serde_json::Value::UInt(stuck)),
        ("livelock".to_string(), serde_json::Value::UInt(livelock)),
        ("collision".to_string(), serde_json::Value::UInt(collision)),
        ("disconnected".to_string(), serde_json::Value::UInt(disconnected)),
        ("step_limit".to_string(), serde_json::Value::UInt(step_limit)),
        ("undecided".to_string(), serde_json::Value::UInt(undecided)),
    ])
}

/// Finds the fixture row with the given `n`/`sched` name, requiring
/// the presence (or absence) of the `stride` marker to keep full and
/// subset rows apart.
fn fixture_row<'a>(
    golden: &'a [serde_json::Value],
    n: usize,
    name: &str,
    subset: bool,
) -> &'a serde_json::Value {
    golden
        .iter()
        .find(|e| {
            e.get("n").and_then(serde_json::Value::as_f64) == Some(n as f64)
                && e.get("sched").and_then(serde_json::Value::as_str) == Some(name)
                && e.get("stride").is_some() == subset
        })
        .unwrap_or_else(|| panic!("fixture lacks {} row n={n} sched={name:?}", kind(subset)))
}

fn kind(subset: bool) -> &'static str {
    if subset {
        "subset"
    } else {
        "full"
    }
}

fn parse_golden() -> Vec<serde_json::Value> {
    let golden: serde_json::Value = serde_json::from_str(GOLDEN).expect("fixture parses");
    golden.as_seq().expect("fixture is an array").to_vec()
}

#[test]
fn small_n_cells_match_golden_rows() {
    let golden = parse_golden();
    for &(n, spec, release_only) in ROWS {
        if release_only {
            continue;
        }
        let name = SchedSpec::parse(spec).expect("known scheduler").name();
        let expected = fixture_row(&golden, n, &name, false);
        assert_eq!(expected, &full_row(n, spec), "full row n={n} sched={name} diverged");
    }
}

#[test]
fn large_n_subset_outcomes_match_golden_rows() {
    let golden = parse_golden();
    for &(n, spec, stride) in SUBSET_ROWS {
        let name = SchedSpec::parse(spec).expect("known scheduler").name();
        let expected = fixture_row(&golden, n, &name, true);
        assert_eq!(
            expected,
            &subset_row(n, spec, stride),
            "subset row n={n} sched={name} diverged"
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full n=8 (16689-class) and n=9 (77359-class) cells are release-only; \
              run cargo test --release"
)]
fn large_n_full_cells_match_golden_rows() {
    let golden = parse_golden();
    for &(n, spec, release_only) in ROWS {
        if !release_only {
            continue;
        }
        let name = SchedSpec::parse(spec).expect("known scheduler").name();
        let expected = fixture_row(&golden, n, &name, false);
        assert_eq!(expected, &full_row(n, spec), "full row n={n} sched={name} diverged");
    }
}

/// Not a test: regenerates the fixture. Run explicitly (release — the
/// n = 8 rows are part of the file!) after an intentional change.
#[test]
#[ignore = "fixture regeneration helper; run explicitly with --ignored"]
#[allow(clippy::assertions_on_constants)]
fn regen_nsweep_golden() {
    assert!(!cfg!(debug_assertions), "regen must run in release: the n=8/n=9 rows are expensive");
    let mut rows: Vec<serde_json::Value> =
        ROWS.iter().map(|&(n, spec, _)| full_row(n, spec)).collect();
    rows.extend(SUBSET_ROWS.iter().map(|&(n, spec, stride)| subset_row(n, spec, stride)));
    let text =
        serde_json::to_string_pretty(&serde_json::Value::Seq(rows)).expect("fixture serialises");
    std::fs::write("tests/golden/nsweep-verified.json", text + "\n").expect("write fixture");
}
