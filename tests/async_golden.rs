//! Golden-file regression for the exhaustive ASYNC model checker.
//!
//! * Debug tier: the verdicts (kind + schedule hash) of the fixed
//!   65-class subset (every 57th class, the same subset the adversary
//!   and crash goldens pin) are pinned by
//!   `tests/golden/async-verified-subset.json`, and every refuted
//!   verdict is replayed through the semantics-backed replayer to its
//!   recorded outcome.
//! * Release tier: the full 3652-class ASYNC classification is
//!   re-derived and pinned — verdict tallies plus the FNV digest over
//!   every per-class verdict and tick schedule — by
//!   `tests/golden/async-verified-full.json`, and **every** refuted
//!   class's schedule is replayed to a non-gathered outcome (the
//!   subsystem's acceptance criterion).
//!
//! Regenerate both fixtures after an intentional checker change with:
//!
//! ```sh
//! cargo test --release --test async_golden -- --ignored regen
//! ```

use gathering::SevenGather;
use robots::async_model::{self, AsyncChecker, AsyncOptions, AsyncVerdict};
use robots::{faults, Configuration, Outcome};
use simlab::sweep::{run_shard, verdict_digest, SchedSpec, ShardRecord, SweepConfig};

const SUBSET_GOLDEN: &str = include_str!("golden/async-verified-subset.json");
const FULL_GOLDEN: &str = include_str!("golden/async-verified-full.json");

/// The pinned subset: every 57th class of the enumeration (65 classes,
/// spread across the whole space — the adversary golden's subset).
fn subset_indices() -> Vec<usize> {
    (0..3652).step_by(57).collect()
}

fn check_subset() -> Vec<(usize, Configuration, async_model::AsyncReport)> {
    let classes = polyhex::enumerate_fixed(7);
    let algo = SevenGather::verified();
    let checker = AsyncChecker::new(&algo, AsyncOptions::default());
    subset_indices()
        .into_iter()
        .map(|index| {
            let initial = Configuration::new(classes[index].iter().copied());
            let report = checker.check(&initial);
            (index, initial, report)
        })
        .collect()
}

fn subset_fixture_entries(
    reports: &[(usize, Configuration, async_model::AsyncReport)],
) -> Vec<serde_json::Value> {
    reports
        .iter()
        .map(|(index, _, report)| {
            let (schedule_hash, ticks) = match &report.verdict {
                AsyncVerdict::Refuted { schedule, .. } => {
                    (format!("{:016x}", faults::schedule_hash(schedule)), schedule.len() as u64)
                }
                _ => (String::new(), 0),
            };
            serde_json::Value::Map(vec![
                ("index".to_string(), serde_json::Value::UInt(*index as u64)),
                ("verdict".to_string(), serde_json::Value::Str(report.verdict.kind().to_string())),
                ("schedule_hash".to_string(), serde_json::Value::Str(schedule_hash)),
                ("ticks".to_string(), serde_json::Value::UInt(ticks)),
            ])
        })
        .collect()
}

/// Asserts a refuted ASYNC verdict replays through the semantics-backed
/// replayer to its recorded outcome, with every action a crash-free
/// one-hot phase advance.
fn assert_replays(
    index: usize,
    initial: &Configuration,
    algo: &SevenGather,
    verdict: &AsyncVerdict,
) {
    let AsyncVerdict::Refuted { outcome, schedule } = verdict else {
        return;
    };
    assert!(
        schedule.iter().all(|a| a.crash == 0 && a.activate.count_ones() == 1),
        "class {index}: ASYNC actions are crash-free one-hot phase advances"
    );
    let run = async_model::replay(initial, algo, verdict).expect("refuted verdicts replay");
    assert_eq!(&run.execution.outcome, outcome, "class {index}: replay diverged");
    assert!(!run.execution.outcome.is_gathered(), "class {index}: a refutation cannot gather");
    // For lassos, the final state must not already be a successful
    // terminal of the ASYNC model.
    if matches!(outcome, Outcome::StepLimit { .. }) {
        assert!(
            !async_model::is_goal_state(&run.execution.final_config, run.pending, algo),
            "class {index}: a lasso replay must not settle at a goal"
        );
    }
}

#[test]
fn async_subset_matches_golden_file() {
    let reports = check_subset();
    let produced = subset_fixture_entries(&reports);
    let golden: serde_json::Value = serde_json::from_str(SUBSET_GOLDEN).expect("fixture parses");
    let golden = golden.as_seq().expect("fixture is an array");
    assert_eq!(golden.len(), produced.len(), "fixture covers the 65-class subset");
    for (expected, actual) in golden.iter().zip(&produced) {
        assert_eq!(expected, actual, "subset verdict diverged from the golden file");
    }
}

#[test]
fn async_subset_refutations_replay_to_their_recorded_outcomes() {
    let algo = SevenGather::verified();
    let mut refuted = 0;
    for (index, initial, report) in check_subset() {
        if matches!(report.verdict, AsyncVerdict::Refuted { .. }) {
            assert_replays(index, &initial, &algo, &report.verdict);
            refuted += 1;
        }
    }
    assert!(refuted > 0, "the pinned subset contains refuted classes");
}

#[test]
fn async_checker_is_deterministic_on_the_subset() {
    let a = check_subset();
    let b = check_subset();
    for ((ia, _, ra), (ib, _, rb)) in a.iter().zip(&b) {
        assert_eq!(ia, ib);
        assert_eq!(ra, rb, "class {ia}: verdicts must be reproducible");
    }
}

fn full_classification() -> (ShardRecord, usize, usize, usize, String) {
    let sched = SchedSpec::parse("lcm-async").expect("known scheduler");
    let cfg = SweepConfig { sched, shards: 1, ..SweepConfig::default() };
    let classes = polyhex::enumerate_fixed(7);
    let record = run_shard(&classes, &cfg, 0, 0, classes.len());
    let digest = format!("{:016x}", verdict_digest(std::slice::from_ref(&record)));
    let mut proof = 0;
    let mut refuted = 0;
    let mut undecided = 0;
    for res in &record.results {
        match res.lcm_async.as_ref().expect("lcm-async cells store verdicts") {
            AsyncVerdict::Proof => proof += 1,
            AsyncVerdict::Refuted { .. } => refuted += 1,
            AsyncVerdict::Undecided { .. } => undecided += 1,
        }
    }
    (record, proof, refuted, undecided, digest)
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full 3652-class ASYNC classification is release-only; run cargo test --release"
)]
fn async_full_classification_matches_golden_file_and_replays() {
    let (record, proof, refuted, undecided, digest) = full_classification();
    let golden: serde_json::Value = serde_json::from_str(FULL_GOLDEN).expect("fixture parses");
    let expect = |key: &str| {
        golden.get(key).and_then(serde_json::Value::as_f64).unwrap_or_else(|| {
            panic!("fixture lacks numeric key {key:?}");
        }) as usize
    };
    assert_eq!(proof + refuted + undecided, 3652, "every class is classified");
    assert_eq!(proof, expect("proof"), "async-proof count diverged");
    assert_eq!(refuted, expect("refuted"), "refuted count diverged");
    assert_eq!(undecided, expect("undecided"), "undecided count diverged");
    let expected_digest =
        golden.get("digest").and_then(serde_json::Value::as_str).expect("digest key");
    assert_eq!(digest, expected_digest, "per-class verdict digest diverged");

    // Acceptance criterion: every refuted class's tick schedule replays
    // through the semantics-backed replayer to a non-gathered outcome.
    let algo = SevenGather::verified();
    let classes = polyhex::enumerate_fixed(7);
    for res in &record.results {
        let verdict = res.lcm_async.as_ref().expect("lcm-async cells store verdicts");
        if matches!(verdict, AsyncVerdict::Refuted { .. }) {
            let initial = Configuration::new(classes[res.index].iter().copied());
            assert_replays(res.index, &initial, &algo, verdict);
        }
    }
}

/// Empirical cross-model pin for the verified rules: every async-proof
/// class is also adversary-proof (543 ⊆ 1869). This is **not** a
/// theorem — a simultaneous SSYNC round (a train or rotation) is not
/// an ASYNC interleaving, so the models are formally incomparable; the
/// proptest `async_semantics.rs` pins the sound half (singleton SSYNC
/// rounds embed into ASYNC). What this test pins is the measured
/// relationship on this rule set, so a checker change that flips it
/// gets noticed rather than silently absorbed.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full-space cross-model comparison is release-only; run cargo test --release"
)]
fn async_proof_implies_adversary_proof() {
    use robots::adversary::{AdversaryOptions, AdversaryVerdict, Checker};
    let algo = SevenGather::verified();
    let adversary = Checker::new(&algo, AdversaryOptions::default());
    let (record, proof, _, _, _) = full_classification();
    assert!(proof > 0, "the comparison must not be vacuous");
    let classes = polyhex::enumerate_fixed(7);
    for res in &record.results {
        if matches!(res.lcm_async, Some(AsyncVerdict::Proof)) {
            let initial = Configuration::new(classes[res.index].iter().copied());
            assert_eq!(
                adversary.check(&initial).verdict,
                AdversaryVerdict::Proof,
                "class {}: async-proof must imply adversary-proof",
                res.index
            );
        }
    }
}

/// Not a test: regenerates both fixtures. Run explicitly (release!)
/// after an intentional checker change.
#[test]
#[ignore = "fixture regeneration helper; run explicitly with --ignored"]
fn regen_async_goldens() {
    let reports = check_subset();
    let entries = subset_fixture_entries(&reports);
    let subset =
        serde_json::to_string_pretty(&serde_json::Value::Seq(entries)).expect("fixture serialises");
    std::fs::write("tests/golden/async-verified-subset.json", subset + "\n")
        .expect("write subset fixture");

    let (_, proof, refuted, undecided, digest) = full_classification();
    let full = serde_json::to_string_pretty(&serde_json::Value::Map(vec![
        ("total".to_string(), serde_json::Value::UInt(3652)),
        ("proof".to_string(), serde_json::Value::UInt(proof as u64)),
        ("refuted".to_string(), serde_json::Value::UInt(refuted as u64)),
        ("undecided".to_string(), serde_json::Value::UInt(undecided as u64)),
        ("digest".to_string(), serde_json::Value::Str(digest)),
    ]))
    .expect("fixture serialises");
    std::fs::write("tests/golden/async-verified-full.json", full + "\n")
        .expect("write full fixture");

    // Keep replay validity in the regen path too.
    let algo = SevenGather::verified();
    for (index, initial, report) in &reports {
        assert_replays(*index, initial, &algo, &report.verdict);
    }
}
