//! Safety invariants of the verified algorithm, checked round by round
//! on a deterministic sample of executions: connectivity never breaks,
//! robot count is conserved, no configuration class repeats, and every
//! execution ends in the hexagon with diameter 2.

use gathering::SevenGather;
use robots::{engine, Configuration, Limits};
use std::collections::HashSet;

fn sample(step: usize) -> Vec<Configuration> {
    polyhex::enumerate_fixed(7).into_iter().step_by(step).map(Configuration::new).collect()
}

#[test]
fn traced_executions_keep_all_invariants() {
    let algo = SevenGather::verified();
    let step = if cfg!(debug_assertions) { 53 } else { 7 };
    for initial in sample(step) {
        let ex = engine::run_traced(&initial, &algo, Limits::default());
        assert!(ex.outcome.is_gathered(), "{initial:?} -> {:?}", ex.outcome);
        let trace = ex.trace.expect("traced");
        let mut seen: HashSet<Configuration> = HashSet::new();
        for (round, cfg) in trace.iter().enumerate() {
            assert_eq!(cfg.len(), 7, "robots conserved at round {round} from {initial:?}");
            assert!(cfg.is_connected(), "disconnected at round {round} from {initial:?}");
            assert!(
                seen.insert(cfg.canonical()),
                "class repeated at round {round} from {initial:?} (livelock)"
            );
        }
        let last = trace.last().unwrap();
        assert!(last.is_gathered());
        assert_eq!(last.diameter(), 2, "the hexagon minimises the max distance");
    }
}

#[test]
fn each_round_is_a_legal_fsync_round() {
    // Re-validate every consecutive pair of the trace against the
    // engine's collision checker: every robot moved at most one step and
    // no prohibited behaviour occurred.
    let algo = SevenGather::verified();
    for initial in sample(101) {
        let ex = engine::run_traced(&initial, &algo, Limits::default());
        let trace = ex.trace.expect("traced");
        for w in trace.windows(2) {
            let moves = engine::compute_moves(&w[0], &algo);
            engine::check_moves(&w[0], &moves).expect("round must be collision-free");
            let stepped = w[0]
                .positions()
                .iter()
                .zip(&moves)
                .map(|(&p, m)| m.map_or(p, |d| p.step(d)))
                .collect::<Configuration>();
            assert_eq!(stepped, w[1], "trace must follow the engine semantics");
        }
    }
}

#[test]
fn executions_are_translation_equivariant() {
    let algo = SevenGather::verified();
    let delta = trigrid::Coord::new(13, 5);
    for initial in sample(211) {
        let a = engine::run(&initial, &algo, Limits::default());
        let b = engine::run(&initial.translate(delta), &algo, Limits::default());
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.final_config.translate(delta), b.final_config);
    }
}

#[test]
fn executions_are_deterministic() {
    let algo = SevenGather::verified();
    let algo2 = SevenGather::verified();
    for initial in sample(301) {
        let a = engine::run_traced(&initial, &algo, Limits::default());
        let b = engine::run_traced(&initial, &algo2, Limits::default());
        assert_eq!(a.trace, b.trace, "independent instances must agree");
    }
}
