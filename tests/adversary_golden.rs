//! Golden-file regression for the SSYNC adversary model checker.
//!
//! * Debug tier: the verdicts (kind + counterexample schedule hash) of
//!   a fixed 65-class subset of the 3652-class space are pinned by
//!   `tests/golden/adversary-verified-subset.json`, and every refuted
//!   verdict is replayed through `run_scheduled` to its recorded
//!   outcome.
//! * Release tier: the full 3652-class classification is re-derived
//!   and pinned — verdict tallies plus an FNV digest over every
//!   per-class verdict and schedule —
//!   by `tests/golden/adversary-verified-full.json`.
//!
//! Regenerate both fixtures after an intentional checker change with:
//!
//! ```sh
//! cargo test --release --test adversary_golden -- --ignored regen
//! ```

use gathering::SevenGather;
use robots::adversary::{self, AdversaryOptions, AdversaryReport, AdversaryVerdict, Checker};
use robots::Configuration;
use simlab::sweep::{run_shard, verdict_digest, SchedSpec, SweepConfig};

const SUBSET_GOLDEN: &str = include_str!("golden/adversary-verified-subset.json");
const FULL_GOLDEN: &str = include_str!("golden/adversary-verified-full.json");

/// The pinned subset: every 57th class of the enumeration (65 classes,
/// spread across the whole space).
fn subset_indices() -> Vec<usize> {
    (0..3652).step_by(57).collect()
}

fn check_subset() -> Vec<(usize, Configuration, AdversaryReport)> {
    let classes = polyhex::enumerate_fixed(7);
    let algo = SevenGather::verified();
    let checker = Checker::new(&algo, AdversaryOptions::default());
    subset_indices()
        .into_iter()
        .map(|index| {
            let initial = Configuration::new(classes[index].iter().copied());
            let report = checker.check(&initial);
            (index, initial, report)
        })
        .collect()
}

fn subset_fixture_entries(
    reports: &[(usize, Configuration, AdversaryReport)],
) -> Vec<serde_json::Value> {
    reports
        .iter()
        .map(|(index, _, report)| {
            let schedule_hash = match &report.verdict {
                AdversaryVerdict::Refuted { schedule, .. } => {
                    format!("{:016x}", adversary::schedule_hash(schedule))
                }
                _ => String::new(),
            };
            serde_json::Value::Map(vec![
                ("index".to_string(), serde_json::Value::UInt(*index as u64)),
                ("verdict".to_string(), serde_json::Value::Str(report.verdict.kind().to_string())),
                ("schedule_hash".to_string(), serde_json::Value::Str(schedule_hash)),
            ])
        })
        .collect()
}

#[test]
fn adversary_subset_matches_golden_file() {
    let reports = check_subset();
    let produced = subset_fixture_entries(&reports);
    let golden: serde_json::Value = serde_json::from_str(SUBSET_GOLDEN).expect("fixture parses");
    let golden = golden.as_seq().expect("fixture is an array");
    assert_eq!(golden.len(), produced.len(), "fixture covers the 65-class subset");
    for (expected, actual) in golden.iter().zip(&produced) {
        assert_eq!(expected, actual, "subset verdict diverged from the golden file");
    }
}

#[test]
fn adversary_subset_refutations_replay_to_their_recorded_outcomes() {
    let algo = SevenGather::verified();
    let mut refuted = 0;
    for (index, initial, report) in check_subset() {
        if let AdversaryVerdict::Refuted { outcome, .. } = &report.verdict {
            let ex = adversary::replay(&initial, &algo, &report.verdict)
                .expect("refuted verdicts replay");
            assert_eq!(&ex.outcome, outcome, "class {index}: replay diverged");
            assert!(!ex.outcome.is_gathered(), "class {index}: a refutation cannot end gathered");
            refuted += 1;
        }
    }
    assert!(refuted > 0, "the pinned subset contains refuted classes");
}

#[test]
fn adversary_checker_is_deterministic_on_the_subset() {
    let a = check_subset();
    let b = check_subset();
    for ((ia, _, ra), (ib, _, rb)) in a.iter().zip(&b) {
        assert_eq!(ia, ib);
        assert_eq!(ra, rb, "class {ia}: verdicts must be reproducible");
    }
}

fn full_classification() -> (usize, usize, usize, String) {
    let sched = SchedSpec::parse("adversary").expect("known scheduler");
    let cfg = SweepConfig { sched, shards: 1, ..SweepConfig::default() };
    let classes = polyhex::enumerate_fixed(7);
    let record = run_shard(&classes, &cfg, 0, 0, classes.len());
    let digest = format!("{:016x}", verdict_digest(std::slice::from_ref(&record)));
    let mut proof = 0;
    let mut refuted = 0;
    let mut undecided = 0;
    for res in &record.results {
        match res.verdict.as_ref().expect("adversary cells store verdicts") {
            AdversaryVerdict::Proof => proof += 1,
            AdversaryVerdict::Refuted { .. } => refuted += 1,
            AdversaryVerdict::Undecided { .. } => undecided += 1,
        }
    }
    (proof, refuted, undecided, digest)
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full 3652-class adversary classification is release-only; run cargo test --release"
)]
fn adversary_full_classification_matches_golden_file() {
    let (proof, refuted, undecided, digest) = full_classification();
    let golden: serde_json::Value = serde_json::from_str(FULL_GOLDEN).expect("fixture parses");
    let expect = |key: &str| {
        golden.get(key).and_then(serde_json::Value::as_f64).unwrap_or_else(|| {
            panic!("fixture lacks numeric key {key:?}");
        }) as usize
    };
    assert_eq!(proof + refuted + undecided, 3652, "every class is classified");
    assert_eq!(proof, expect("proof"), "adversary-proof count diverged");
    assert_eq!(refuted, expect("refuted"), "refuted count diverged");
    assert_eq!(undecided, expect("undecided"), "undecided count diverged");
    let expected_digest =
        golden.get("digest").and_then(serde_json::Value::as_str).expect("digest key");
    assert_eq!(digest, expected_digest, "per-class verdict digest diverged");
}

/// Not a test: regenerates both fixtures. Run explicitly (release!)
/// after an intentional checker change.
#[test]
#[ignore = "fixture regeneration helper; run explicitly with --ignored"]
fn regen_adversary_goldens() {
    let reports = check_subset();
    let entries = subset_fixture_entries(&reports);
    let subset =
        serde_json::to_string_pretty(&serde_json::Value::Seq(entries)).expect("fixture serialises");
    std::fs::write("tests/golden/adversary-verified-subset.json", subset + "\n")
        .expect("write subset fixture");

    let (proof, refuted, undecided, digest) = full_classification();
    let full = serde_json::to_string_pretty(&serde_json::Value::Map(vec![
        ("total".to_string(), serde_json::Value::UInt(3652)),
        ("proof".to_string(), serde_json::Value::UInt(proof as u64)),
        ("refuted".to_string(), serde_json::Value::UInt(refuted as u64)),
        ("undecided".to_string(), serde_json::Value::UInt(undecided as u64)),
        ("digest".to_string(), serde_json::Value::Str(digest)),
    ]))
    .expect("fixture serialises");
    std::fs::write("tests/golden/adversary-verified-full.json", full + "\n")
        .expect("write full fixture");

    // Keep replay validity in the regen path too.
    let algo = SevenGather::verified();
    for (index, initial, report) in &reports {
        if matches!(report.verdict, AdversaryVerdict::Refuted { .. }) {
            let ex = adversary::replay(initial, &algo, &report.verdict).expect("replays");
            assert!(!ex.outcome.is_gathered(), "class {index}: bad regenerated refutation");
        }
    }
}
