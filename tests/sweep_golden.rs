//! Golden-file regression for the sweep pipeline: the merged summary of
//! the verified-rules FSYNC cell must keep reporting 3652/3652 classes
//! gathered (Theorem 2), with the outcome breakdown and round maximum
//! pinned by `tests/golden/sweep-verified-fsync.json`.
//!
//! The comparison is structural: every key present in the fixture must
//! match the generated summary exactly (the fixture deliberately omits
//! volatile presentation fields like `mean_rounds` and the shard
//! count, so re-sharding does not dirty the golden file).

use simlab::sweep::{run_sweep, ShardStatus, SweepConfig};

const GOLDEN: &str = include_str!("golden/sweep-verified-fsync.json");

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("trigather-golden-{tag}-{}", std::process::id()))
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full 3652-class sweep is release-only; run cargo test --release"
)]
fn merged_sweep_summary_matches_golden_file() {
    let dir = temp_dir("fsync");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = SweepConfig::default(); // verified / fsync / n = 7
    let outcome = run_sweep(&cfg, &dir, false, |_, _, _| {}).expect("sweep runs");

    // Both sides through the same JSON path, compared structurally.
    let golden: serde_json::Value = serde_json::from_str(GOLDEN).expect("fixture parses");
    let produced: serde_json::Value = {
        let text = std::fs::read_to_string(cfg.summary_path(&dir)).expect("summary written");
        serde_json::from_str(&text).expect("summary parses")
    };
    let golden_map = golden.as_map().expect("fixture is an object");
    for (key, expected) in golden_map {
        let actual = produced.get(key).unwrap_or_else(|| panic!("summary lacks key {key:?}"));
        assert_eq!(actual, expected, "summary key {key:?} diverged from the golden file");
    }

    // And the pipeline invariants the fixture cannot express: shard
    // records exist on disk and a resumed run reuses all of them.
    for shard in 0..cfg.shards {
        assert!(cfg.shard_path(&dir, shard).exists(), "shard {shard} record missing");
    }
    let resumed = run_sweep(&cfg, &dir, true, |_, _, _| {}).expect("resume runs");
    assert!(resumed.shard_status.iter().all(|s| *s == ShardStatus::Reused));
    assert_eq!(resumed.summary, outcome.summary);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_pipeline_smoke_on_small_n() {
    // Debug-friendly end-to-end pass over the 186-class n=5 space so
    // plain `cargo test` still exercises shard/write/merge/resume.
    let dir = temp_dir("smoke");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = SweepConfig { n: 5, shards: 4, ..SweepConfig::default() };
    let first = run_sweep(&cfg, &dir, true, |_, _, _| {}).expect("sweep runs");
    assert_eq!(first.summary.total, 186);
    assert!(first.shard_status.iter().all(|s| *s == ShardStatus::Computed));
    let second = run_sweep(&cfg, &dir, true, |_, _, _| {}).expect("resume runs");
    assert!(second.shard_status.iter().all(|s| *s == ShardStatus::Reused));
    assert_eq!(first.summary, second.summary);
    let _ = std::fs::remove_dir_all(&dir);
}
